package p2p

import (
	"fmt"
	"testing"
	"time"

	"spnet/internal/gnutella"
)

// startNode spins up a node on a loopback port.
func startNode(t *testing.T, opts Options) *Node {
	t.Helper()
	n := NewNode(opts)
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// lineTopology builds n nodes connected in a path: 0-1-2-…
func lineTopology(t *testing.T, count int, opts Options) []*Node {
	t.Helper()
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = startNode(t, opts)
	}
	for i := 1; i < count; i++ {
		if err := nodes[i].ConnectPeer(nodes[i-1].Addr()); err != nil {
			t.Fatalf("ConnectPeer: %v", err)
		}
	}
	return nodes
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClientJoinAndLocalSearch(t *testing.T) {
	n := startNode(t, Options{})
	cl, err := DialClient(n.Addr(), []SharedFile{
		{Index: 1, Title: "Free Jazz Classics"},
		{Index: 2, Title: "Rock Anthems"},
	})
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()
	waitFor(t, "join indexed", func() bool { return n.Stats().IndexedFiles == 2 })

	results, err := cl.Search("jazz", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 1 || results[0].FileIndex != 1 {
		t.Fatalf("results = %+v, want file 1", results)
	}
	if results[0].Title != "free jazz classics" {
		t.Errorf("title = %q", results[0].Title)
	}
	// Conjunctive query.
	if r, _ := cl.Search("rock classics", 200*time.Millisecond); len(r) != 0 {
		t.Errorf("conjunction matched %+v", r)
	}
}

func TestQueryFloodsAcrossOverlay(t *testing.T) {
	nodes := lineTopology(t, 4, Options{TTL: 7})

	// A client with the target file sits at the far end.
	provider, err := DialClient(nodes[3].Addr(), []SharedFile{
		{Index: 42, Title: "distributed systems lecture"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	waitFor(t, "provider indexed", func() bool { return nodes[3].Stats().IndexedFiles == 1 })

	// A client at the near end queries; the flood must cross 3 hops and the
	// response must travel the reverse path back.
	seeker, err := DialClient(nodes[0].Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer seeker.Close()
	results, err := seeker.Search("lecture", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].FileIndex != 42 {
		t.Fatalf("results = %+v, want file 42 from across the overlay", results)
	}
	if results[0].OwnerPort == 0 {
		t.Error("responder address not carried")
	}
}

func TestTTLBoundsReach(t *testing.T) {
	// A 4-node path with TTL 2: node 0's queries reach nodes 1 and 2 but
	// not node 3.
	nodes := lineTopology(t, 4, Options{TTL: 2})
	far, err := DialClient(nodes[3].Addr(), []SharedFile{{Index: 9, Title: "rare gem"}})
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	near, err := DialClient(nodes[2].Addr(), []SharedFile{{Index: 8, Title: "common gem"}})
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	waitFor(t, "both indexed", func() bool {
		return nodes[3].Stats().IndexedFiles == 1 && nodes[2].Stats().IndexedFiles == 1
	})

	results, err := nodes[0].Search("gem", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v, want exactly the TTL-reachable file", results)
	}
	if results[0].FileIndex != 8 {
		t.Errorf("got file %d, want 8 (the reachable one)", results[0].FileIndex)
	}
}

func TestClientLeaveRemovesMetadata(t *testing.T) {
	n := startNode(t, Options{})
	cl, err := DialClient(n.Addr(), []SharedFile{{Index: 1, Title: "fleeting file"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "indexed", func() bool { return n.Stats().IndexedFiles == 1 })
	cl.Close()
	waitFor(t, "metadata removed", func() bool { return n.Stats().IndexedFiles == 0 })
	if got := n.Stats().Clients; got != 0 {
		t.Errorf("clients = %d, want 0", got)
	}
}

func TestUpdatesMaintainIndex(t *testing.T) {
	n := startNode(t, Options{})
	cl, err := DialClient(n.Addr(), []SharedFile{{Index: 1, Title: "first song"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "joined", func() bool { return n.Stats().IndexedFiles == 1 })

	if err := cl.Update(gnutella.OpInsert, SharedFile{Index: 2, Title: "second song"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "insert", func() bool { return n.Stats().IndexedFiles == 2 })

	if err := cl.Update(gnutella.OpModify, SharedFile{Index: 1, Title: "renamed tune"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "modify", func() bool {
		r, _ := cl.Search("renamed", 100*time.Millisecond)
		return len(r) == 1
	})
	if r, _ := cl.Search("first", 100*time.Millisecond); len(r) != 0 {
		t.Errorf("old title still matches: %+v", r)
	}

	if err := cl.Update(gnutella.OpDelete, SharedFile{Index: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delete", func() bool { return n.Stats().IndexedFiles == 1 })
}

func TestDuplicateQueriesDropped(t *testing.T) {
	// A triangle: node 0's query reaches 1 and 2 directly and over the
	// longer way; each node must respond exactly once.
	nodes := lineTopology(t, 3, Options{TTL: 7})
	if err := nodes[0].ConnectPeer(nodes[2].Addr()); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		cl, err := DialClient(n.Addr(), []SharedFile{
			{Index: uint32(i), Title: fmt.Sprintf("shared track %d", i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
	}
	waitFor(t, "all indexed", func() bool {
		for _, n := range nodes {
			if n.Stats().IndexedFiles != 1 {
				return false
			}
		}
		return true
	})
	results, err := nodes[0].Search("shared", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want exactly 3 (duplicates must be dropped): %+v",
			len(results), results)
	}
}

func TestMaxClientsRefused(t *testing.T) {
	n := startNode(t, Options{MaxClients: 1})
	first, err := DialClient(n.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := DialClient(n.Addr(), nil); err == nil {
		t.Fatal("second client admitted past MaxClients")
	}
}

func TestConnectPeerErrors(t *testing.T) {
	n := startNode(t, Options{})
	if err := n.ConnectPeer("127.0.0.1:1"); err == nil {
		t.Error("dial to dead port succeeded")
	}
	full := startNode(t, Options{MaxPeers: 1})
	ok := startNode(t, Options{})
	if err := ok.ConnectPeer(full.Addr()); err != nil {
		t.Fatal(err)
	}
	other := startNode(t, Options{})
	waitFor(t, "first peer registered", func() bool { return full.Stats().Peers == 1 })
	if err := other.ConnectPeer(full.Addr()); err == nil {
		t.Error("peer admitted past MaxPeers")
	}
}

func TestNodeCloseIsClean(t *testing.T) {
	n := NewNode(Options{})
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl, err := DialClient(n.Addr(), []SharedFile{{Index: 1, Title: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := n.Search("x", 50*time.Millisecond); err == nil {
		t.Error("Search on closed node succeeded")
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	n := startNode(t, Options{})
	results, err := n.Search("   ", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("empty query matched %+v", results)
	}
}
