package p2p

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"spnet/internal/gnutella"
)

// Search floods a query from this node itself (super-peers are users too)
// and collects Response messages for the given window. Local matches are
// included.
func (n *Node) Search(query string, window time.Duration) ([]SearchResult, error) {
	id, err := newGUID()
	if err != nil {
		return nil, err
	}
	ch := make(chan *gnutella.QueryHit, 64)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errClosed
	}
	n.routes[id] = &routeEntry{owner: -1, local: ch, at: time.Now()}
	localHit := n.searchLocked(id, query)
	peers := n.peerListLocked(nil)
	ttl := uint8(n.opts.TTL)
	n.mu.Unlock()

	defer func() {
		n.mu.Lock()
		delete(n.routes, id)
		n.mu.Unlock()
	}()

	n.flood(&gnutella.Query{ID: id, TTL: ttl, Text: query}, peers)

	var out []SearchResult
	if localHit != nil {
		out = append(out, hitResults(localHit)...)
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for {
		select {
		case hit := <-ch:
			out = append(out, hitResults(hit)...)
		case <-deadline.C:
			return out, nil
		case <-n.stop:
			return out, errClosed
		}
	}
}

// SearchResult is one matching file, with the owning client's address.
type SearchResult struct {
	Title     string
	FileIndex uint32
	OwnerGUID gnutella.GUID
	OwnerIP   [4]byte
	OwnerPort uint16
	Hops      int
}

func hitResults(h *gnutella.QueryHit) []SearchResult {
	out := make([]SearchResult, 0, len(h.Results))
	for _, r := range h.Results {
		sr := SearchResult{
			Title:     r.Title,
			FileIndex: r.FileIndex,
			Hops:      int(h.Hops),
		}
		if int(r.AddrRef) < len(h.Responders) {
			resp := h.Responders[r.AddrRef]
			sr.OwnerGUID = resp.ClientGUID
			sr.OwnerIP = resp.IP
			sr.OwnerPort = resp.Port
		}
		out = append(out, sr)
	}
	return out
}

// SharedFile is one file a client shares.
type SharedFile struct {
	Index uint32
	Size  uint32
	Title string
}

// Client is a client-role connection to a super-peer.
type Client struct {
	c    net.Conn
	br   *bufio.Reader
	guid gnutella.GUID
}

// DialClient connects to a super-peer, performs the handshake, and joins
// with the given collection (the metadata shipment of Section 3.2).
func DialClient(addr string, files []SharedFile) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("p2p: dialing super-peer %s: %w", addr, err)
	}
	if _, err := fmt.Fprintf(c, "%s\n", helloClient); err != nil {
		c.Close()
		return nil, err
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("p2p: handshake with %s: %w", addr, err)
	}
	c.SetReadDeadline(time.Time{})
	if strings.TrimSpace(line) != helloOK {
		c.Close()
		return nil, fmt.Errorf("p2p: super-peer %s refused: %s", addr, strings.TrimSpace(line))
	}
	guid, err := newGUID()
	if err != nil {
		c.Close()
		return nil, err
	}
	cl := &Client{c: c, br: br, guid: guid}
	if err := cl.join(files); err != nil {
		c.Close()
		return nil, err
	}
	return cl, nil
}

// join ships the collection metadata.
func (cl *Client) join(files []SharedFile) error {
	j := &gnutella.Join{ID: cl.guid}
	for _, f := range files {
		j.Files = append(j.Files, gnutella.MetadataRecord{
			FileIndex: f.Index, FileSize: f.Size, Title: f.Title,
		})
	}
	return gnutella.WriteMessage(cl.c, j)
}

// Rejoin replaces the client's collection at the super-peer.
func (cl *Client) Rejoin(files []SharedFile) error { return cl.join(files) }

// Update notifies the super-peer of a single collection change.
func (cl *Client) Update(op gnutella.UpdateOp, f SharedFile) error {
	return gnutella.WriteMessage(cl.c, &gnutella.Update{
		ID: cl.guid,
		Op: op,
		File: gnutella.MetadataRecord{
			FileIndex: f.Index, FileSize: f.Size, Title: f.Title,
		},
	})
}

// Search submits a keyword query to the super-peer and collects results for
// the given window. "Clients submit queries to their super-peer and receive
// results from it" (Section 1).
func (cl *Client) Search(query string, window time.Duration) ([]SearchResult, error) {
	id, err := newGUID()
	if err != nil {
		return nil, err
	}
	if err := gnutella.WriteMessage(cl.c, &gnutella.Query{ID: id, TTL: 1, Text: query}); err != nil {
		return nil, err
	}
	var out []SearchResult
	deadline := time.Now().Add(window)
	for {
		if err := cl.c.SetReadDeadline(deadline); err != nil {
			return out, err
		}
		msg, err := gnutella.ReadMessage(cl.br)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				cl.c.SetReadDeadline(time.Time{})
				return out, nil // window elapsed: results are complete
			}
			return out, err
		}
		hit, ok := msg.(*gnutella.QueryHit)
		if !ok {
			continue // tolerate unexpected traffic
		}
		if hit.ID == id {
			out = append(out, hitResults(hit)...)
		}
	}
}

// Close disconnects from the super-peer; the super-peer drops the client's
// metadata from its index.
func (cl *Client) Close() error { return cl.c.Close() }
