package p2p

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/stats"
	"spnet/internal/trust"
)

// NeighborStatus reports query delivery to one overlay neighbor during a
// search flood: Err is nil when the query left for that link.
type NeighborStatus struct {
	Addr string
	Err  error
}

// SearchOutcome is the detailed result of a node-originated search: the
// collected results plus the per-neighbor delivery accounting, so a search
// over a degraded overlay returns what it could reach instead of failing
// whole.
type SearchOutcome struct {
	Results []SearchResult
	// Neighbors records, per overlay link, whether the flood reached it.
	Neighbors []NeighborStatus
	// Busy counts load-shed (Busy) signals routed back for this query:
	// overloaded super-peers that refused it instead of answering.
	Busy int
}

// Failed counts neighbors the flood could not be delivered to.
func (o *SearchOutcome) Failed() int {
	n := 0
	for _, s := range o.Neighbors {
		if s.Err != nil {
			n++
		}
	}
	return n
}

// Search floods a query from this node itself (super-peers are users too)
// and collects Response messages for the given window. Local matches are
// included.
func (n *Node) Search(query string, window time.Duration) ([]SearchResult, error) {
	out, err := n.SearchDetailed(query, window)
	if out == nil {
		return nil, err
	}
	return out.Results, err
}

// SearchDetailed is Search with per-neighbor delivery accounting. Dead
// overlay links degrade the result set; they do not error the search.
func (n *Node) SearchDetailed(query string, window time.Duration) (*SearchOutcome, error) {
	id, err := newGUID()
	if err != nil {
		return nil, err
	}
	ch := make(chan *gnutella.QueryHit, 64)
	var busyN atomic.Int32

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errClosed
	}
	rt := &routeEntry{owner: -1, local: ch, busyN: &busyN, at: time.Now()}
	if n.routeLearns {
		rt.terms = titleTerms(query)
	}
	n.routes[id] = rt
	localHit := n.searchLocked(id, query)
	peers := n.peerListLocked(nil)
	ttl := uint8(n.opts.TTL)
	n.mu.Unlock()

	defer func() {
		n.mu.Lock()
		delete(n.routes, id)
		n.mu.Unlock()
	}()

	peers = n.selectPeers(peers, query, id, int(ttl), 0)
	outcome := &SearchOutcome{}
	outcome.Neighbors = n.flood(&gnutella.Query{ID: id, TTL: ttl, Text: query}, peers)

	if localHit != nil {
		outcome.Results = append(outcome.Results, hitResults(localHit)...)
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for {
		select {
		case hit := <-ch:
			outcome.Results = append(outcome.Results, hitResults(hit)...)
		case <-deadline.C:
			outcome.Busy = int(busyN.Load())
			return outcome, nil
		case <-n.stop:
			outcome.Busy = int(busyN.Load())
			return outcome, errClosed
		}
	}
}

// SearchResult is one matching file, with the owning client's address.
type SearchResult struct {
	Title     string
	FileIndex uint32
	OwnerGUID gnutella.GUID
	OwnerIP   [4]byte
	OwnerPort uint16
	Hops      int
}

func hitResults(h *gnutella.QueryHit) []SearchResult {
	out := make([]SearchResult, 0, len(h.Results))
	for _, r := range h.Results {
		sr := SearchResult{
			Title:     r.Title,
			FileIndex: r.FileIndex,
			Hops:      int(h.Hops),
		}
		if int(r.AddrRef) < len(h.Responders) {
			resp := h.Responders[r.AddrRef]
			sr.OwnerGUID = resp.ClientGUID
			sr.OwnerIP = resp.IP
			sr.OwnerPort = resp.Port
		}
		out = append(out, sr)
	}
	return out
}

// SharedFile is one file a client shares.
type SharedFile struct {
	Index uint32
	Size  uint32
	Title string
}

// Backoff parameterizes the client's reconnect loop: exponential growth with
// multiplicative jitter.
type Backoff struct {
	// Initial is the delay before the second attempt (default 200ms); the
	// first reconnect attempt is immediate.
	Initial time.Duration
	// Max caps the delay (default 5s).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter fraction
	// (default 0.2). Jitter draws come from DialOptions.Seed, so a fixed
	// seed yields a fixed delay sequence.
	Jitter float64
}

func (b *Backoff) setDefaults() {
	if b.Initial <= 0 {
		b.Initial = 200 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
}

// delay returns the backoff before reconnect attempt `attempt` (0-based; 0
// is immediate).
func (b *Backoff) delay(attempt int, rng *stats.RNG) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := float64(b.Initial)
	for i := 1; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// EventType classifies client connection-lifecycle events.
type EventType int

// Client lifecycle events.
const (
	// EventConnLost fires when the live connection is detected dead.
	EventConnLost EventType = iota
	// EventBackoff fires before a reconnect attempt sleeps.
	EventBackoff
	// EventDialFailed fires when one reconnect attempt fails.
	EventDialFailed
	// EventReconnected fires when a connection to a (possibly different)
	// super-peer is established.
	EventReconnected
	// EventRejoined fires after the collection metadata has been re-shipped
	// to the new super-peer.
	EventRejoined
	// EventGaveUp fires when MaxAttempts reconnect attempts all failed.
	EventGaveUp
)

func (t EventType) String() string {
	switch t {
	case EventConnLost:
		return "conn-lost"
	case EventBackoff:
		return "backoff"
	case EventDialFailed:
		return "dial-failed"
	case EventReconnected:
		return "reconnected"
	case EventRejoined:
		return "rejoined"
	case EventGaveUp:
		return "gave-up"
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is one observation from the client's failover machinery.
type Event struct {
	Type    EventType
	Addr    string
	Attempt int
	Delay   time.Duration
	Err     error
}

// DialOptions configure a client connection, including the k-redundancy
// failover the paper's Section 3.2 motivates: a ranked list of redundant
// partner super-peers, reconnect backoff, and an optional heartbeat
// supervisor.
type DialOptions struct {
	// Addrs is the ranked list of partner super-peer addresses; the client
	// connects to the first reachable one and fails over down (and around)
	// the list when its super-peer dies.
	Addrs []string
	// DialTimeout bounds each TCP dial (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each message write (default 30s).
	WriteTimeout time.Duration
	// Backoff shapes the reconnect delays.
	Backoff Backoff
	// MaxAttempts bounds one failover cycle's reconnect attempts across the
	// ranked list (default 8).
	MaxAttempts int
	// HeartbeatInterval is the supervisor's ping period: a background
	// watchdog pings the super-peer and drives reconnection the moment the
	// link dies, without waiting for the next user operation (0 disables
	// the supervisor; faults still trigger reconnection on use).
	HeartbeatInterval time.Duration
	// Seed drives the jitter stream (fixed seed → fixed delays).
	Seed uint64
	// Trust enables reputation-ranked partner selection: each search scores
	// the current super-peer on whether it produced genuine results (results
	// backed by a dialable owner address), refusals count against it, and
	// failover walks the ranked list in reliability-score order instead of
	// list order. When the best rival's score exceeds the current partner's
	// by TrustMargin the client re-homes proactively.
	Trust bool
	// TrustMargin is how far (in score) a rival must lead before the client
	// re-homes to it (default 0.15; the hysteresis that prevents flapping
	// between comparable partners).
	TrustMargin float64
	// TrustPriors, when non-empty, seeds the reputation book with initial
	// reliability views aligned index-for-index with Addrs — the noisy
	// initial views of the reliability model (values clamped to [0, 1]).
	TrustPriors []float64
	// Metrics, when set, meters the client's traffic: raw socket bytes and
	// per-message load-taxonomy attribution land in this metric set, under
	// the same names super-peers use.
	Metrics *metrics.NodeMetrics
	// Dial, when set, replaces the dialer (fault-injection hook).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// OnEvent, when set, observes failover progress. Called synchronously
	// from client goroutines; keep it fast.
	OnEvent func(Event)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (o *DialOptions) setDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	o.Backoff.setDefaults()
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.TrustMargin <= 0 || o.TrustMargin >= 1 {
		o.TrustMargin = 0.15
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
	if o.OnEvent == nil {
		o.OnEvent = func(Event) {}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Client is a client-role connection to a (virtual) super-peer. It remembers
// its shared collection and, when its super-peer dies, reconnects to the
// next partner in the ranked list with exponential backoff and re-joins, so
// the replacement's index is reconciled automatically.
type Client struct {
	opts DialOptions
	guid gnutella.GUID
	rng  *stats.RNG // jitter stream; used only under recMu

	// book scores each ranked super-peer's reliability (keyed by index into
	// opts.Addrs); nil unless DialOptions.Trust. The book locks internally.
	book *trust.Book

	mu      sync.Mutex // guards conn/br/files/addrIdx/broken/closed
	wmu     sync.Mutex // serializes message writes
	c       net.Conn
	br      *bufio.Reader
	files   []SharedFile
	addrIdx int // index into opts.Addrs of the live super-peer
	broken  bool
	closed  bool

	recMu      sync.Mutex // serializes failover cycles
	reconnects int        // guarded by mu

	busy atomic.Int64 // Busy responses observed across all searches

	stop chan struct{}
	wg   sync.WaitGroup
}

// trustPriorWeight is the pseudo-count weight of DialOptions.TrustPriors —
// strong enough to steer initial partner choice, weak enough that a few
// contradicting observations override a wrong view.
const trustPriorWeight = 4

// rankedOrder returns indices into opts.Addrs in preference order:
// reputation-score order under Trust, list order otherwise.
func (cl *Client) rankedOrder() []int {
	ids := make([]int, len(cl.opts.Addrs))
	for i := range ids {
		ids[i] = i
	}
	if cl.book != nil {
		cl.book.Rank(ids)
	}
	return ids
}

// errClientClosed reports operations on a closed client.
var errClientClosed = errors.New("p2p: client closed")

// ErrNoSuperPeer reports that a failover cycle exhausted every ranked
// super-peer without reconnecting.
var ErrNoSuperPeer = errors.New("p2p: no reachable super-peer")

// DialClient connects to a super-peer, performs the handshake, and joins
// with the given collection (the metadata shipment of Section 3.2).
func DialClient(addr string, files []SharedFile) (*Client, error) {
	return DialClientOptions(DialOptions{Addrs: []string{addr}}, files)
}

// DialClientOptions connects to the first reachable super-peer in the
// ranked list and joins with the given collection. With more than one
// address (the paper's k-redundant partners) the client fails over
// automatically when its super-peer dies.
func DialClientOptions(opts DialOptions, files []SharedFile) (*Client, error) {
	if len(opts.Addrs) == 0 {
		return nil, errors.New("p2p: DialOptions.Addrs is empty")
	}
	opts.setDefaults()
	guid, err := newGUID()
	if err != nil {
		return nil, err
	}
	cl := &Client{
		opts:  opts,
		guid:  guid,
		rng:   stats.NewRNG(opts.Seed),
		files: append([]SharedFile(nil), files...),
		stop:  make(chan struct{}),
	}
	if opts.Trust {
		cl.book = trust.NewBook()
		for i, rel := range opts.TrustPriors {
			if i >= len(opts.Addrs) {
				break
			}
			cl.book.SetPrior(i, rel, trustPriorWeight)
		}
	}
	var firstErr error
	connected := false
	for _, i := range cl.rankedOrder() {
		c, br, err := cl.dialOne(opts.Addrs[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cl.c, cl.br, cl.addrIdx = c, br, i
		connected = true
		break
	}
	if !connected {
		return nil, firstErr
	}
	if err := cl.writeMsg(cl.c, cl.joinMsg()); err != nil {
		cl.c.Close()
		return nil, err
	}
	if opts.HeartbeatInterval > 0 {
		cl.wg.Add(1)
		go cl.watchdog()
	}
	return cl, nil
}

// dialOne establishes and handshakes one client connection.
func (cl *Client) dialOne(addr string) (net.Conn, *bufio.Reader, error) {
	c, err := cl.opts.Dial("tcp", addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("p2p: dialing super-peer %s: %w", addr, err)
	}
	if nm := cl.opts.Metrics; nm != nil {
		c = metrics.NewMeteredConn(c, nm.ConnBytes[metrics.DirIn], nm.ConnBytes[metrics.DirOut])
	}
	if _, err := fmt.Fprintf(c, "%s\n", helloClient); err != nil {
		c.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(cl.opts.HandshakeTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("p2p: handshake with %s: %w", addr, err)
	}
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		c.Close()
		return nil, nil, err
	}
	if strings.TrimSpace(line) != helloOK {
		c.Close()
		return nil, nil, fmt.Errorf("p2p: super-peer %s refused: %s", addr, strings.TrimSpace(line))
	}
	return c, br, nil
}

// joinMsg builds the Join for the current collection. Callers hold cl.mu or
// have exclusive access.
func (cl *Client) joinMsg() *gnutella.Join {
	j := &gnutella.Join{ID: cl.guid}
	for _, f := range cl.files {
		j.Files = append(j.Files, gnutella.MetadataRecord{
			FileIndex: f.Index, FileSize: f.Size, Title: f.Title,
		})
	}
	return j
}

// writeMsg writes one message to c with the write deadline, serialized
// against concurrent writers.
func (cl *Client) writeMsg(c net.Conn, m gnutella.Message) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	c.SetWriteDeadline(time.Now().Add(cl.opts.WriteTimeout))
	if err := gnutella.WriteMessage(c, m); err != nil {
		return err
	}
	if nm := cl.opts.Metrics; nm != nil {
		gnutella.Meter(nm.Load, metrics.DirOut, m)
	}
	return nil
}

// markBroken flags the given connection dead (if it is still the live one)
// so the next operation — or the watchdog — reconnects.
func (cl *Client) markBroken(c net.Conn, err error) {
	cl.mu.Lock()
	fire := false
	if cl.c == c && !cl.broken && !cl.closed {
		cl.broken = true
		fire = true
		c.Close()
	}
	cl.mu.Unlock()
	if fire {
		cl.opts.Logf("p2p: connection to super-peer lost: %v", err)
		cl.opts.OnEvent(Event{Type: EventConnLost, Err: err})
	}
}

// liveConn returns the current connection, running a failover cycle first if
// the connection is known dead.
func (cl *Client) liveConn() (net.Conn, *bufio.Reader, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, nil, errClientClosed
	}
	if !cl.broken {
		c, br := cl.c, cl.br
		cl.mu.Unlock()
		return c, br, nil
	}
	cl.mu.Unlock()
	if err := cl.failover(); err != nil {
		return nil, nil, err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, nil, errClientClosed
	}
	return cl.c, cl.br, nil
}

// failover is the supervised reconnect loop: starting from the partner
// ranked after the dead one, it walks the ranked super-peer list with
// exponential backoff and jitter, re-handshakes, re-joins with the current
// collection (reconciling the replacement partner's index), and installs the
// new connection. Under Trust the walk follows reputation-score order (with
// the partner just left demoted to the end of the cycle) instead of list
// order. Cycles are serialized; a second caller finding the connection
// already repaired returns immediately.
func (cl *Client) failover() error {
	cl.recMu.Lock()
	defer cl.recMu.Unlock()

	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return errClientClosed
	}
	if !cl.broken {
		cl.mu.Unlock()
		return nil // repaired by a concurrent cycle
	}
	fromIdx := cl.addrIdx
	cl.mu.Unlock()

	var order []int
	if cl.book != nil {
		order = cl.rankedOrder()
		for i, idx := range order {
			if idx == fromIdx {
				order = append(append(order[:i:i], order[i+1:]...), fromIdx)
				break
			}
		}
	}

	var lastErr error
	for attempt := 0; attempt < cl.opts.MaxAttempts; attempt++ {
		next := (fromIdx + 1 + attempt) % len(cl.opts.Addrs)
		if order != nil {
			next = order[attempt%len(order)]
		}
		addr := cl.opts.Addrs[next]
		if d := cl.opts.Backoff.delay(attempt, cl.rng); d > 0 {
			cl.opts.OnEvent(Event{Type: EventBackoff, Addr: addr, Attempt: attempt, Delay: d})
			select {
			case <-time.After(d):
			case <-cl.stop:
				return errClientClosed
			}
		}
		c, br, err := cl.dialOne(addr)
		if err != nil {
			lastErr = err
			cl.opts.Logf("p2p: reconnect attempt %d to %s: %v", attempt, addr, err)
			cl.opts.OnEvent(Event{Type: EventDialFailed, Addr: addr, Attempt: attempt, Err: err})
			continue
		}

		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			c.Close()
			return errClientClosed
		}
		join := cl.joinMsg()
		cl.mu.Unlock()
		if err := cl.writeMsg(c, join); err != nil {
			c.Close()
			lastErr = err
			cl.opts.OnEvent(Event{Type: EventDialFailed, Addr: addr, Attempt: attempt, Err: err})
			continue
		}

		cl.mu.Lock()
		cl.c, cl.br = c, br
		cl.addrIdx = next
		cl.broken = false
		cl.reconnects++
		cl.mu.Unlock()
		cl.opts.Logf("p2p: reconnected to super-peer %s (attempt %d)", addr, attempt)
		cl.opts.OnEvent(Event{Type: EventReconnected, Addr: addr, Attempt: attempt})
		cl.opts.OnEvent(Event{Type: EventRejoined, Addr: addr})
		return nil
	}
	err := fmt.Errorf("%w after %d attempts: %v", ErrNoSuperPeer, cl.opts.MaxAttempts, lastErr)
	cl.opts.OnEvent(Event{Type: EventGaveUp, Err: err})
	return err
}

// watchdog supervises the connection: it pings the super-peer every
// HeartbeatInterval and triggers failover as soon as the link dies, so
// recovery does not wait for the next user operation. Pong replies are
// consumed (and ignored) by the next Search's read loop.
func (cl *Client) watchdog() {
	defer cl.wg.Done()
	t := time.NewTicker(cl.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-cl.stop:
			return
		case <-t.C:
		}
		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			return
		}
		broken, c := cl.broken, cl.c
		cl.mu.Unlock()
		if !broken {
			id, err := newGUID()
			if err != nil {
				continue
			}
			if err := cl.writeMsg(c, &gnutella.Ping{ID: id, TTL: 1}); err == nil {
				continue
			} else {
				cl.markBroken(c, err)
			}
		}
		if err := cl.failover(); err != nil && !errors.Is(err, errClientClosed) {
			cl.opts.Logf("p2p: watchdog failover: %v", err)
		}
	}
}

// Rejoin replaces the client's collection at the super-peer.
func (cl *Client) Rejoin(files []SharedFile) error {
	cl.mu.Lock()
	cl.files = append(cl.files[:0], files...)
	cl.mu.Unlock()
	c, _, err := cl.liveConn()
	if err != nil {
		return err
	}
	cl.mu.Lock()
	j := cl.joinMsg()
	cl.mu.Unlock()
	if err := cl.writeMsg(c, j); err != nil {
		cl.markBroken(c, err)
		return err
	}
	return nil
}

// Update notifies the super-peer of a single collection change, keeping the
// client's remembered collection in sync so a later failover re-joins with
// the post-update state.
func (cl *Client) Update(op gnutella.UpdateOp, f SharedFile) error {
	cl.mu.Lock()
	switch op {
	case gnutella.OpDelete:
		for i := range cl.files {
			if cl.files[i].Index == f.Index {
				cl.files = append(cl.files[:i], cl.files[i+1:]...)
				break
			}
		}
	case gnutella.OpInsert, gnutella.OpModify:
		replaced := false
		for i := range cl.files {
			if cl.files[i].Index == f.Index {
				cl.files[i] = f
				replaced = true
				break
			}
		}
		if !replaced {
			cl.files = append(cl.files, f)
		}
	}
	cl.mu.Unlock()

	c, _, err := cl.liveConn()
	if err != nil {
		return err
	}
	msg := &gnutella.Update{
		ID: cl.guid,
		Op: op,
		File: gnutella.MetadataRecord{
			FileIndex: f.Index, FileSize: f.Size, Title: f.Title,
		},
	}
	if err := cl.writeMsg(c, msg); err != nil {
		cl.markBroken(c, err)
		return err
	}
	return nil
}

// Search submits a keyword query to the super-peer and collects results for
// the given window. "Clients submit queries to their super-peer and receive
// results from it" (Section 1).
//
// Search degrades gracefully: a connection failure mid-window returns the
// results collected so far together with the error, marks the connection
// dead, and the next operation (or the watchdog) fails over to the next
// ranked super-peer. Every exit path either clears the read deadline or
// retires the connection, so a failed SetReadDeadline can never leave a
// stale deadline poisoning subsequent calls.
func (cl *Client) Search(query string, window time.Duration) ([]SearchResult, error) {
	out, err := cl.SearchDetailed(query, window)
	if out == nil {
		return nil, err
	}
	return out.Results, err
}

// ClientSearchOutcome is the detailed result of one client search: the
// collected results plus how many Busy (load-shed) signals came back for the
// query, so callers can distinguish "no matches" from "the network refused
// some of the work".
type ClientSearchOutcome struct {
	Results []SearchResult
	// Busy counts Busy responses received for this query's GUID: super-peers
	// that shed the query under overload instead of answering it.
	Busy int
	// Genuine counts results backed by a dialable owner address — the
	// subset a forged hit cannot fake. Under Trust this is what the partner
	// is scored on; trust-oblivious callers still see forged results in
	// Results.
	Genuine int
}

// SearchDetailed is Search with overload accounting: Busy responses for the
// query are counted instead of silently skipped. The degradation semantics
// are identical to Search.
func (cl *Client) SearchDetailed(query string, window time.Duration) (*ClientSearchOutcome, error) {
	c, br, err := cl.liveConn()
	if err != nil {
		return nil, err
	}
	id, err := newGUID()
	if err != nil {
		return nil, err
	}
	if err := cl.writeMsg(c, &gnutella.Query{ID: id, TTL: 1, Text: query}); err != nil {
		cl.markBroken(c, err)
		return nil, err
	}
	out := &ClientSearchOutcome{}
	deadline := time.Now().Add(window)
	for {
		if err := c.SetReadDeadline(deadline); err != nil {
			// The deadline state is unknowable; retire the connection.
			cl.markBroken(c, err)
			return out, err
		}
		msg, err := gnutella.ReadMessage(br)
		if err == nil {
			if nm := cl.opts.Metrics; nm != nil {
				gnutella.Meter(nm.Load, metrics.DirIn, msg)
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && time.Now().After(deadline) {
				// Window elapsed: results are complete. Restore the
				// connection to its deadline-free state — if that fails,
				// retire it rather than let the stale deadline poison the
				// next call.
				if cerr := c.SetReadDeadline(time.Time{}); cerr != nil {
					cl.markBroken(c, cerr)
				}
				cl.observeSearch(c, out)
				return out, nil
			}
			cl.markBroken(c, err)
			return out, err
		}
		switch m := msg.(type) {
		case *gnutella.QueryHit:
			if m.ID == id {
				rs := hitResults(m)
				out.Results = append(out.Results, rs...)
				for _, r := range rs {
					if r.OwnerPort != 0 {
						out.Genuine++
					}
				}
			}
		case *gnutella.Busy:
			if m.ID == id {
				out.Busy++
				cl.busy.Add(1)
			}
		default:
			// Tolerate unexpected traffic (heartbeat pongs, etc.).
		}
	}
}

// observeSearch scores the current partner on one completed search window —
// good iff any genuine result came back, so Busy-lying, freeloading and
// forging all register as bad — then re-homes if a rival's reputation now
// leads by TrustMargin. Skipped if the connection changed mid-search.
func (cl *Client) observeSearch(c net.Conn, out *ClientSearchOutcome) {
	if cl.book == nil {
		return
	}
	cl.mu.Lock()
	idx := cl.addrIdx
	live := cl.c == c && !cl.broken && !cl.closed
	cl.mu.Unlock()
	if !live {
		return
	}
	cl.book.Observe(idx, out.Genuine > 0)
	cl.maybeRehome()
}

// maybeRehome proactively switches to the best-reputed partner when the
// current one's score has fallen TrustMargin behind it: the live connection
// is retired and a failover cycle — which under Trust walks partners in
// score order — installs the better one, re-joining so the replacement's
// index has this client's collection. A malicious partner keeps its TCP link
// perfectly healthy, so reputation, not connectivity, has to drive the exit.
func (cl *Client) maybeRehome() {
	cl.mu.Lock()
	cur := cl.addrIdx
	c := cl.c
	busy := cl.broken || cl.closed
	cl.mu.Unlock()
	if busy {
		return
	}
	curScore := cl.book.Score(cur)
	best, bestScore := cur, curScore
	for i := range cl.opts.Addrs {
		if s := cl.book.Score(i); s > bestScore {
			best, bestScore = i, s
		}
	}
	if best == cur || bestScore < curScore+cl.opts.TrustMargin {
		return
	}
	cl.opts.Logf("p2p: re-homing: partner %s score %.2f trails %s at %.2f",
		cl.opts.Addrs[cur], curScore, cl.opts.Addrs[best], bestScore)
	cl.markBroken(c, fmt.Errorf("p2p: partner reputation %.2f trails best %.2f", curScore, bestScore))
	if err := cl.failover(); err != nil && !errors.Is(err, errClientClosed) {
		cl.opts.Logf("p2p: re-homing failover: %v", err)
	}
}

// PartnerScores reports the client's reputation view of each ranked
// super-peer address. Nil when DialOptions.Trust is off.
func (cl *Client) PartnerScores() map[string]float64 {
	if cl.book == nil {
		return nil
	}
	out := make(map[string]float64, len(cl.opts.Addrs))
	for i, a := range cl.opts.Addrs {
		out[a] = cl.book.Score(i)
	}
	return out
}

// BusyResponses reports how many Busy (load-shed) signals the client has
// received across all searches.
func (cl *Client) BusyResponses() int64 {
	return cl.busy.Load()
}

// Reconnect forces a failover cycle if the connection is dead; it is a
// no-op on a healthy client.
func (cl *Client) Reconnect() error {
	_, _, err := cl.liveConn()
	return err
}

// Reconnects reports how many times the client has failed over.
func (cl *Client) Reconnects() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.reconnects
}

// SuperPeerAddr returns the address of the currently connected super-peer.
func (cl *Client) SuperPeerAddr() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.opts.Addrs[cl.addrIdx]
}

// Close disconnects from the super-peer; the super-peer drops the client's
// metadata from its index.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	c := cl.c
	cl.mu.Unlock()
	close(cl.stop)
	var err error
	if c != nil {
		err = c.Close()
	}
	cl.wg.Wait()
	return err
}
