package p2p

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"spnet/internal/gnutella"
)

// slowWriteConn delays every write, simulating a saturated downlink so the
// dispatch workers fall behind the arrival rate.
type slowWriteConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowWriteConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

// rawClient is a bare wire-level client: handshake + join, no failover
// machinery, so tests control exactly what goes on the wire and when.
type rawClient struct {
	c  net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string, files []gnutella.MetadataRecord) *rawClient {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := fmt.Fprintf(c, "%s\n", helloClient); err != nil {
		t.Fatalf("hello: %v", err)
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("handshake read: %v", err)
	}
	if strings.TrimSpace(line) != helloOK {
		t.Fatalf("handshake reply: %q", line)
	}
	c.SetReadDeadline(time.Time{})
	guid := gnutella.GUID{0xaa}
	if err := gnutella.WriteMessage(c, &gnutella.Join{ID: guid, Files: files}); err != nil {
		t.Fatalf("join: %v", err)
	}
	return &rawClient{c: c, br: br}
}

// testGUID builds a deterministic distinct GUID per query index.
func testGUID(i int) gnutella.GUID {
	var g gnutella.GUID
	g[0] = byte(i)
	g[1] = byte(i >> 8)
	g[2] = 0x42
	return g
}

// TestNodeOverloadSheds drives a deliberately under-provisioned node (one
// slow worker, tiny queue and inflight caps) far past capacity and checks the
// overload contract: excess queries are refused with counted Busy responses,
// nothing is silently dropped, and response latency stays bounded because the
// node sheds instead of queueing without limit.
func TestNodeOverloadSheds(t *testing.T) {
	const nQueries = 200
	n := startNode(t, Options{
		QueryWorkers: 1,
		QueueDepth:   4,
		MaxInflight:  4,
		Wrap: func(c net.Conn) net.Conn {
			return &slowWriteConn{Conn: c, delay: 2 * time.Millisecond}
		},
	})
	rc := dialRaw(t, n.Addr(), []gnutella.MetadataRecord{
		{FileIndex: 1, Title: "needle in a haystack"},
	})
	waitFor(t, "join indexed", func() bool { return n.Stats().IndexedFiles == 1 })

	// Blast queries far faster than one 2ms-per-write worker can answer.
	sentAt := make(map[gnutella.GUID]time.Time, nQueries)
	for i := 0; i < nQueries; i++ {
		id := testGUID(i)
		sentAt[id] = time.Now()
		if err := gnutella.WriteMessage(rc.c, &gnutella.Query{ID: id, TTL: 1, Text: "needle"}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	// Every admitted query matches the needle (one hit); every shed query
	// must come back as Busy. Nothing may go unanswered.
	hits, busy := 0, 0
	latencies := make([]time.Duration, 0, nQueries)
	rc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for hits+busy < nQueries {
		msg, err := gnutella.ReadMessage(rc.br)
		if err != nil {
			t.Fatalf("after %d hits + %d busy: read: %v", hits, busy, err)
		}
		var id gnutella.GUID
		switch m := msg.(type) {
		case *gnutella.QueryHit:
			hits++
			id = m.ID
		case *gnutella.Busy:
			busy++
			id = m.ID
		default:
			continue
		}
		if at, ok := sentAt[id]; ok {
			latencies = append(latencies, time.Since(at))
		}
	}

	if hits == 0 {
		t.Error("no queries were answered; overload protection starved admitted work")
	}
	if busy == 0 {
		t.Error("no Busy responses despite overload")
	}
	st := n.Stats()
	if st.QueriesShed == 0 {
		t.Errorf("Stats().QueriesShed = 0, want > 0 (hits=%d busy=%d)", hits, busy)
	}
	if int(st.QueriesShed) != busy {
		t.Errorf("Stats().QueriesShed = %d, but client counted %d Busy frames", st.QueriesShed, busy)
	}
	if got := int(st.QueriesHandled); got != hits {
		t.Errorf("Stats().QueriesHandled = %d, but client counted %d hits", got, hits)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 3*time.Second {
		t.Errorf("p99 response latency %v exceeds bound; queue not shedding", p99)
	}
}

// TestClientQueryRateLimit checks the per-client token bucket: a client
// blasting queries far over its configured rate gets Busy refusals, counted
// as RateLimited, while the first burst-worth of queries is admitted.
func TestClientQueryRateLimit(t *testing.T) {
	const nQueries = 50
	n := startNode(t, Options{
		ClientQueryRate:  5,
		ClientQueryBurst: 2,
	})
	rc := dialRaw(t, n.Addr(), []gnutella.MetadataRecord{
		{FileIndex: 1, Title: "needle"},
	})
	waitFor(t, "join indexed", func() bool { return n.Stats().IndexedFiles == 1 })

	for i := 0; i < nQueries; i++ {
		if err := gnutella.WriteMessage(rc.c, &gnutella.Query{ID: testGUID(i), TTL: 1, Text: "needle"}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	hits, busy := 0, 0
	rc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for hits+busy < nQueries {
		msg, err := gnutella.ReadMessage(rc.br)
		if err != nil {
			t.Fatalf("after %d hits + %d busy: read: %v", hits, busy, err)
		}
		switch msg.(type) {
		case *gnutella.QueryHit:
			hits++
		case *gnutella.Busy:
			busy++
		}
	}
	st := n.Stats()
	if st.RateLimited < 40 {
		t.Errorf("Stats().RateLimited = %d, want >= 40 of %d over-rate queries", st.RateLimited, nQueries)
	}
	if int(st.RateLimited) != busy {
		t.Errorf("Stats().RateLimited = %d, but client counted %d Busy frames", st.RateLimited, busy)
	}
	if hits < 2 {
		t.Errorf("hits = %d, want >= burst (2) admitted", hits)
	}
}

// TestClientSearchDetailedCountsBusy checks the supervised client surfaces
// load-shed signals: a rate-limited query reports Busy in its outcome rather
// than silently returning zero results.
func TestClientSearchDetailedCountsBusy(t *testing.T) {
	n := startNode(t, Options{
		ClientQueryRate:  0.001, // effectively: one query per bucket refill era
		ClientQueryBurst: 1,
	})
	cl, err := DialClient(n.Addr(), []SharedFile{{Index: 1, Title: "needle"}})
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()
	waitFor(t, "join indexed", func() bool { return n.Stats().IndexedFiles == 1 })

	first, err := cl.SearchDetailed("needle", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("first search: %v", err)
	}
	if len(first.Results) != 1 || first.Busy != 0 {
		t.Fatalf("first search = %d results, %d busy; want 1, 0", len(first.Results), first.Busy)
	}
	second, err := cl.SearchDetailed("needle", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("second search: %v", err)
	}
	if second.Busy != 1 || len(second.Results) != 0 {
		t.Fatalf("second search = %d results, %d busy; want 0, 1", len(second.Results), second.Busy)
	}
	if got := cl.BusyResponses(); got != 1 {
		t.Errorf("BusyResponses() = %d, want 1", got)
	}
}

// TestNodePartialFrameTimeout checks the frame-completion deadline: a sender
// that stalls mid-frame is disconnected within FrameTimeout instead of
// pinning a reader goroutine (and its connection slot) forever.
func TestNodePartialFrameTimeout(t *testing.T) {
	n := startNode(t, Options{FrameTimeout: 200 * time.Millisecond})
	rc := dialRaw(t, n.Addr(), nil)

	// A descriptor header promising a 100-byte payload, then silence.
	head := make([]byte, gnutella.DescriptorHeaderLen)
	head[16] = byte(gnutella.TypeQuery)
	head[17] = 1   // TTL
	head[19] = 100 // little-endian payload length
	if _, err := rc.c.Write(head); err != nil {
		t.Fatalf("partial frame: %v", err)
	}

	start := time.Now()
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rc.br.ReadByte(); err == nil {
		t.Fatal("expected the node to close the stalled connection")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("stalled frame held the connection for %v; FrameTimeout not enforced", waited)
	}
}
