// Command spnet-control runs the fleet controller: it watches a set of live
// super-peers (spnet-node processes) over persistent control links and their
// /metrics telemetry, and pushes the paper's Section 5.3 local decision
// rules to them as epoch-versioned directives — partner promotion when a
// node dies or flaps, cluster split and TTL decay on sustained overload,
// coalesce on underload.
//
// Each -node flag names one super-peer as id=addr[=telemetry] with the
// optional cluster/partner position appended as @cluster.partner:
//
//	spnet-node -listen 127.0.0.1:7001 -id sp-0-0 -telemetry 127.0.0.1:9001
//	spnet-node -listen 127.0.0.1:7002 -id sp-0-1 -telemetry 127.0.0.1:9002
//	spnet-control -node sp-0-0=127.0.0.1:7001=127.0.0.1:9001@0.0 \
//	              -node sp-0-1=127.0.0.1:7002=127.0.0.1:9002@0.1 \
//	              -capacity 100 -scrape 2s
//
// Nodes keep serving on their last-applied configuration whenever the
// controller is unreachable; restarting spnet-control is safe — it relearns
// the fleet's directive epoch from the nodes' Register announcements.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spnet"
)

// nodeFlags collects repeated -node specs.
type nodeFlags []spnet.FleetNodeConfig

func (n *nodeFlags) String() string { return fmt.Sprintf("%d nodes", len(*n)) }

// Set parses id=addr[=telemetry][@cluster.partner].
func (n *nodeFlags) Set(spec string) error {
	cfg := spnet.FleetNodeConfig{}
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		pos := spec[at+1:]
		spec = spec[:at]
		if _, err := fmt.Sscanf(pos, "%d.%d", &cfg.Cluster, &cfg.Partner); err != nil {
			return fmt.Errorf("bad position %q (want cluster.partner): %v", pos, err)
		}
	}
	parts := strings.Split(spec, "=")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("bad node spec %q (want id=addr[=telemetry][@cluster.partner])", spec)
	}
	cfg.ID, cfg.Addr = parts[0], parts[1]
	if len(parts) == 3 {
		cfg.Telemetry = parts[2]
	}
	*n = append(*n, cfg)
	return nil
}

func main() {
	var nodes nodeFlags
	var (
		scrape   = flag.Duration("scrape", 2*time.Second, "scrape/decision interval")
		rpcTO    = flag.Duration("rpc-timeout", 2*time.Second, "per-directive round-trip timeout")
		capacity = flag.Int("capacity", 100, "baseline per-node client capacity (promotion doubles it)")
		inLimit  = flag.Float64("limit-in-bps", 0, "per-node incoming-bandwidth limit; 0 disables the hotspot/underload rules")
		outLimit = flag.Float64("limit-out-bps", 0, "per-node outgoing-bandwidth limit")
		ttl      = flag.Int("base-ttl", 7, "baseline TTL (the ceiling TTL decay works down from)")
		scale    = flag.Float64("time-scale", 1, "virtual seconds per wall second (for compressed-time workloads)")
		seed     = flag.Uint64("seed", 1, "seed for backoff jitter")
		verbose  = flag.Bool("v", false, "log controller diagnostics")
	)
	flag.Var(&nodes, "node", "super-peer as id=addr[=telemetry][@cluster.partner]; repeatable")
	flag.Parse()
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "spnet-control: at least one -node is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := spnet.FleetOptions{
		Nodes:          nodes,
		ScrapeInterval: *scrape,
		RPCTimeout:     *rpcTO,
		ClientCapacity: *capacity,
		Limit:          spnet.Load{InBps: *inLimit, OutBps: *outLimit},
		BaseTTL:        *ttl,
		TimeScale:      *scale,
		Seed:           *seed,
		OnEvent: func(e spnet.FleetEvent) {
			fmt.Printf("%s %s\n", e.Time.Format("15:04:05.000"), e)
		},
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	ctrl := spnet.NewFleetController(opts)
	ctrl.Start()
	fmt.Printf("fleet controller watching %d nodes (scrape %s, capacity %d)\n",
		len(nodes), *scrape, *capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down; nodes keep their last-applied configuration")
	ctrl.Close()
}
