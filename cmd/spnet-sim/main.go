// Command spnet-sim runs the deterministic discrete-event, message-level
// super-peer simulator over a generated network and prints the measured
// loads, optionally with the Section 5.3 local decision rules adapting the
// topology live.
//
// Example — validate the analysis on the default configuration:
//
//	spnet-sim -size 2000 -duration 2000
//
// Example — adaptive mode with client arrivals:
//
//	spnet-sim -size 2000 -duration 3600 -adaptive -limit-bps 50000 \
//	          -limit-proc 1e6 -arrivals 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"spnet"
)

func main() {
	def := spnet.DefaultConfig()
	var (
		graphType  = flag.String("graph", "power", `overlay type: "power" or "strong"`)
		size       = flag.Int("size", 2000, "number of peers")
		cluster    = flag.Int("cluster", def.ClusterSize, "cluster size")
		redundancy = flag.Bool("redundancy", false, "2-redundant virtual super-peers")
		outdeg     = flag.Float64("outdeg", def.AvgOutdegree, "average super-peer outdegree")
		ttl        = flag.Int("ttl", def.TTL, "query TTL")
		duration   = flag.Float64("duration", 1800, "virtual seconds to simulate")
		seed       = flag.Uint64("seed", 1, "random seed")
		noChurn    = flag.Bool("no-churn", false, "disable session churn (join traffic)")
		contentOn  = flag.Bool("content", false, "answer queries from real inverted indexes over synthetic titles")
		routing    = flag.String("routing", "flood", `query-routing strategy: "flood", "randomwalk[:k]", "routingindex" or "learned"`)
		compare    = flag.Bool("compare", true, "also print the analysis engine's expectations")

		mtbf     = flag.Float64("mtbf", 0, "inject super-peer failures with this mean time between failures (s); 0 = off")
		recovery = flag.Float64("recovery", 120, "failure injection: replacement delay (s)")

		malicious = flag.Float64("malicious", 0, "fraction of super-peer partners that misbehave, in [0,1]; 0 = off")
		malDrop   = flag.Float64("mal-drop", 1, "adversary: probability a malicious partner silently drops a query")
		malForge  = flag.Float64("mal-forge", 0, "adversary: probability a malicious relay forges a QueryHit")
		malBusy   = flag.Float64("mal-busylie", 0, "adversary: probability a malicious partner Busy-refuses its own client")
		trustOn   = flag.Bool("trust", false, "adversary: reputation-weighted partner selection and forged-hit auditing")

		adaptive  = flag.Bool("adaptive", false, "run the Section 5.3 local decision rules")
		limitBps  = flag.Float64("limit-bps", 50_000, "adaptive: per-super-peer bandwidth limit each way (bps)")
		limitProc = flag.Float64("limit-proc", 1e6, "adaptive: per-super-peer processing limit (Hz)")
		interval  = flag.Float64("interval", 60, "adaptive: local evaluation period (s)")
		arrivals  = flag.Float64("arrivals", 0, "adaptive: new-client arrival rate (clients/s)")
	)
	flag.Parse()

	cfg := spnet.Config{
		GraphSize:    *size,
		ClusterSize:  *cluster,
		Redundancy:   *redundancy,
		AvgOutdegree: *outdeg,
		TTL:          *ttl,
	}
	switch *graphType {
	case "power":
		cfg.GraphType = spnet.PowerLaw
	case "strong":
		cfg.GraphType = spnet.Strong
	default:
		fmt.Fprintf(os.Stderr, "unknown -graph %q\n", *graphType)
		os.Exit(2)
	}

	inst, err := spnet.Generate(cfg, nil, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	opts := spnet.SimOptions{
		Duration: *duration,
		Seed:     *seed + 1,
		Churn:    !*noChurn,
	}
	if *routing != "flood" {
		strat, err := spnet.ParseRouting(*routing)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		opts.Routing = strat
	}
	if *mtbf > 0 {
		opts.Failures = &spnet.FailureOptions{MTBF: *mtbf, RecoveryDelay: *recovery}
	}
	if *contentOn {
		opts.Content = &spnet.ContentOptions{}
	}
	if *malicious > 0 || *trustOn {
		opts.Adversary = &spnet.AdversaryOptions{
			Fraction: *malicious,
			Drop:     *malDrop,
			Forge:    *malForge,
			BusyLie:  *malBusy,
			Trust:    *trustOn,
		}
	}
	if *adaptive {
		opts.Adaptive = &spnet.AdaptiveOptions{
			Limit:       spnet.Load{InBps: *limitBps, OutBps: *limitBps, ProcHz: *limitProc},
			Interval:    *interval,
			ArrivalRate: *arrivals,
		}
	}

	m, err := spnet.Simulate(inst, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Printf("configuration: %v\n", cfg)
	fmt.Printf("simulated %.0f s of virtual time: %d queries, %d events\n\n",
		m.Duration, m.QueriesIssued, m.EventsExecuted)
	fmt.Printf("measured loads:\n")
	fmt.Printf("  aggregate:       %v\n", m.Aggregate)
	fmt.Printf("  mean super-peer: %v\n", m.MeanSuperPeer)
	fmt.Printf("  mean client:     %v\n", m.MeanClient)
	fmt.Printf("  results/query:   %.1f\n", m.ResultsPerQuery)
	fmt.Printf("  EPL:             %.2f\n", m.EPL)
	if m.QueriesIssued > 0 {
		fmt.Printf("  routing:         %s, %.2f forwards/query\n",
			m.Strategy, float64(m.QueriesForwarded)/float64(m.QueriesIssued))
	}
	fmt.Printf("topology at end of run: %d clusters, %d peers, mean outdegree %.1f, mean TTL %.1f\n",
		m.FinalClusters, m.FinalPeers, m.FinalMeanOutdegree, m.FinalMeanTTL)
	if m.FailuresInjected > 0 {
		fmt.Printf("failures: %d injected, %d client queries lost (%.2f%%)\n",
			m.FailuresInjected, m.ClientQueriesLost,
			100*float64(m.ClientQueriesLost)/float64(m.QueriesIssued+m.ClientQueriesLost))
	}
	if *malicious > 0 || *trustOn {
		fmt.Printf("adversary (%.0f%% malicious, trust %v):\n", 100**malicious, *trustOn)
		fmt.Printf("  refused %d, dropped %d at access, %d at relays; forged %d (%d accepted, %d detected)\n",
			m.QueriesRefused, m.QueriesDroppedMalicious, m.RelayDropsMalicious,
			m.ForgedResponses, m.ForgedAccepted, m.ForgedDetected)
		if m.ClientQueriesTracked > 0 {
			fmt.Printf("  client queries: %d tracked, %d lost (%.2f%%); genuine results/query %.2f, spread p50/p90/p99 %.1f/%.1f/%.1f\n",
				m.ClientQueriesTracked, m.ClientQueriesUnanswered,
				100*float64(m.ClientQueriesUnanswered)/float64(m.ClientQueriesTracked),
				m.GenuineResultsPerQuery, m.SpreadP50, m.SpreadP90, m.SpreadP99)
		}
	}

	if *compare && !*adaptive && !*contentOn {
		res := spnet.Evaluate(inst)
		fmt.Printf("\nanalysis expectations (same instance):\n")
		fmt.Printf("  aggregate:       %v\n", res.AggregateLoad())
		fmt.Printf("  mean super-peer: %v\n", res.MeanSuperPeerLoad())
		fmt.Printf("  mean client:     %v\n", res.MeanClientLoad())
		fmt.Printf("  results/query:   %.1f\n", res.ResultsPerQuery)
		fmt.Printf("  EPL:             %.2f\n", res.EPL)
	}
}
