// Command spnet-experiments regenerates the tables and figures of the
// paper's evaluation (Section 5 and Appendices C–E).
//
// Usage:
//
//	spnet-experiments -list
//	spnet-experiments -exp fig4 [-scale 1.0] [-trials 3] [-seed 1]
//	spnet-experiments -exp all -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spnet"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id, or 'all' (see -list)")
		scale   = flag.Float64("scale", 1.0, "network-size multiplier (1.0 = paper scale)")
		trials  = flag.Int("trials", 0, "trials per configuration (0 = experiment default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "evaluation workers (0 = all cores, 1 = serial); output is identical at any setting")
		list     = flag.Bool("list", false, "list the available experiments")
		csvDir   = flag.String("csv", "", "also write the report's tables and series as CSV files into this directory")
		progress = flag.Bool("progress", false, "report per-sweep progress on stderr while experiments run")
	)
	flag.Parse()

	if *list || *exp == "" {
		titles := spnet.ExperimentTitles()
		fmt.Println("available experiments:")
		for _, id := range spnet.ExperimentIDs() {
			fmt.Printf("  %-10s %s\n", id, titles[id])
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> or run everything with -exp all")
			os.Exit(2)
		}
		return
	}

	params := spnet.ExperimentParams{Scale: *scale, Trials: *trials, Seed: *seed, Workers: *workers}
	ids := []string{*exp}
	if *exp == "all" {
		ids = spnet.ExperimentIDs()
	}
	failed := false
	for _, id := range ids {
		if *progress {
			id := id
			params.Progress = func(stage string, done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %s %d/%d", id, stage, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		start := time.Now()
		rep, err := spnet.RunExperiment(id, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(spnet.FormatReport(rep))
		if *csvDir != "" {
			paths, err := spnet.WriteReportCSV(rep, *csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing CSV for %s: %v\n", id, err)
				failed = true
			} else {
				fmt.Printf("(wrote %d CSV files to %s)\n", len(paths), *csvDir)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
