// Command spnet-experiments regenerates the tables and figures of the
// paper's evaluation (Section 5 and Appendices C–E).
//
// Usage:
//
//	spnet-experiments -list
//	spnet-experiments -exp fig4 [-scale 1.0] [-trials 3] [-seed 1]
//	spnet-experiments -exp all -scale 0.2
//	spnet-experiments -exp reliability -live [-live-scale 120] [-live-duration 600]
//	spnet-experiments -exp loadvalidation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spnet"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id, or 'all' (see -list)")
		scale    = flag.Float64("scale", 1.0, "network-size multiplier (1.0 = paper scale)")
		trials   = flag.Int("trials", 0, "trials per configuration (0 = experiment default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "evaluation workers (0 = all cores, 1 = serial); output is identical at any setting")
		list     = flag.Bool("list", false, "list the available experiments")
		csvDir   = flag.String("csv", "", "also write the report's tables and series as CSV files into this directory (streamed per sweep point: interrupted runs keep partial results)")
		progress = flag.Bool("progress", false, "report per-sweep progress on stderr while experiments run")

		live         = flag.Bool("live", false, "with -exp reliability (or all): also replay the failure regimes on a real TCP super-peer network and print the live table next to the simulated one")
		liveScale    = flag.Float64("live-scale", 120, "time-scale bridge: virtual seconds per wall-clock second for the live run")
		liveDuration = flag.Float64("live-duration", 600, "virtual seconds per live cell")
		liveClients  = flag.Int("live-clients", 3, "live clients per cluster")
	)
	flag.Parse()

	if *list || *exp == "" {
		titles := spnet.ExperimentTitles()
		fmt.Println("available experiments:")
		for _, id := range spnet.ExperimentIDs() {
			fmt.Printf("  %-10s %s\n", id, titles[id])
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> or run everything with -exp all")
			os.Exit(2)
		}
		return
	}

	params := spnet.ExperimentParams{Scale: *scale, Trials: *trials, Seed: *seed, Workers: *workers}
	ids := []string{*exp}
	if *exp == "all" {
		ids = spnet.ExperimentIDs()
	}
	failed := false
	for _, id := range ids {
		var prog func(stage string, done, total int)
		if *progress {
			id := id
			prog = func(stage string, done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %s %d/%d", id, stage, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		params.Progress = prog

		// Streaming CSV export: rows land on disk as sweep points complete,
		// so an interrupted run keeps its partial results. The final
		// WriteReportCSV below overwrites them with the identical full table.
		var stream *spnet.ReportCSVStream
		params.RowSink = nil
		if *csvDir != "" {
			var err error
			stream, err = spnet.NewReportCSVStream(id, *csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opening CSV stream for %s: %v\n", id, err)
				failed = true
			} else {
				params.RowSink = stream.Row
			}
		}

		start := time.Now()
		rep, err := spnet.RunExperiment(id, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			if stream != nil {
				stream.Close()
			}
			continue
		}
		fmt.Print(spnet.FormatReport(rep))

		if *live && id == "reliability" {
			lp := spnet.LiveReliabilityParams{
				TimeScale:         *liveScale,
				Duration:          *liveDuration,
				ClientsPerCluster: *liveClients,
				Seed:              *seed,
				Progress:          prog,
			}
			if stream != nil {
				lp.RowSink = stream.Row
			}
			liveRep, err := spnet.RunLiveReliability(lp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "live reliability failed: %v\n", err)
				failed = true
			} else {
				fmt.Print(spnet.FormatReport(liveRep))
				if *csvDir != "" {
					if _, err := spnet.WriteReportCSV(liveRep, *csvDir); err != nil {
						fmt.Fprintf(os.Stderr, "writing CSV for live reliability: %v\n", err)
						failed = true
					}
				}
			}
		}

		if stream != nil {
			if _, err := stream.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "streaming CSV for %s: %v\n", id, err)
				failed = true
			}
		}
		if *csvDir != "" {
			paths, err := spnet.WriteReportCSV(rep, *csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing CSV for %s: %v\n", id, err)
				failed = true
			} else {
				fmt.Printf("(wrote %d CSV files to %s)\n", len(paths), *csvDir)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
