// Command spnet-node runs one live super-peer over TCP: it serves clients
// (metadata joins, keyword queries, updates) and connects to other
// super-peers as overlay neighbors, flooding queries with a TTL and
// relaying responses along the reverse path.
//
// Start a small overlay:
//
//	spnet-node -listen 127.0.0.1:7001
//	spnet-node -listen 127.0.0.1:7002 -peers 127.0.0.1:7001
//	spnet-node -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002
//
// Ask a node to run one query itself and exit:
//
//	spnet-node -listen 127.0.0.1:7004 -peers 127.0.0.1:7001 \
//	           -query "free jazz" -wait 2s
//
// Serve downloadable content (the chunked transfer plane) — every node
// started with the same content flags serves identical bytes, so a fetcher
// can download from several of them in parallel:
//
//	spnet-node -listen 127.0.0.1:7001 -serve-content -content-files 16 \
//	           -transfer-rate 262144
//
// Expose load telemetry (Prometheus /metrics, expvar /debug/vars, pprof):
//
//	spnet-node -listen 127.0.0.1:7001 -telemetry 127.0.0.1:9001
//
// On SIGINT or SIGTERM the node shuts down gracefully: it deregisters from
// any attached fleet controllers (so partner promotion kicks in without
// waiting for a death timeout), drains in-flight queries for DrainTimeout,
// and flushes telemetry before exiting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		log.Fatal(err)
	}
}

// run is main's testable body: it parses args, serves until a signal arrives
// on sigc (or on SIGINT/SIGTERM when sigc is nil), and shuts down in order —
// node first (deregister + drain), telemetry server last.
func run(args []string, out io.Writer, sigc <-chan os.Signal) error {
	fs := flag.NewFlagSet("spnet-node", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		listen  = fs.String("listen", "127.0.0.1:0", "address to serve clients and peers on")
		peers   = fs.String("peers", "", "comma-separated super-peer addresses to connect to")
		id      = fs.String("id", "", "node identity announced to fleet controllers (e.g. sp-0-0)")
		ttl     = fs.Int("ttl", 7, "TTL stamped on queries")
		maxCl   = fs.Int("max-clients", 100, "maximum clients (cluster size - 1)")
		maxPeer = fs.Int("max-peers", 30, "maximum overlay neighbors (outdegree)")
		telem   = fs.String("telemetry", "", "serve load telemetry on this address: /metrics (Prometheus), /debug/vars (expvar), /debug/pprof/")
		query   = fs.String("query", "", "run this keyword query from the node itself, print results, and exit")
		wait    = fs.Duration("wait", 2*time.Second, "how long to collect results for -query")
		routing = fs.String("routing", "flood", `query-routing strategy: "flood", "randomwalk[:k]", "routingindex" or "learned"`)
		rseed   = fs.Uint64("routing-seed", 1, "seed for randomized routing strategies")
		verbose = fs.Bool("v", false, "log protocol diagnostics")

		serveContent = fs.Bool("serve-content", false, "serve downloadable content: seed a deterministic store and answer chunk requests")
		contentFiles = fs.Int("content-files", 8, "with -serve-content: number of titles sampled into the store")
		contentSeed  = fs.Uint64("content-seed", 1, "with -serve-content: seed for title sampling (same seed + flags = same store on every node)")
		contentChunk = fs.Int("content-chunk", 0, "with -serve-content: chunk size in bytes (0 = default)")
		maxTransfers = fs.Int("max-transfers", 0, "with -serve-content: concurrent transfer links served (0 = default)")
		transferRate = fs.Float64("transfer-rate", 0, "with -serve-content: aggregate served content bytes/sec (0 = unpaced)")

		trustOn    = fs.Bool("trust", false, "reputation defenses: validate QueryHits, score neighbor links (spnet_peer_reputation), trust-weighted overlay admission")
		trustShare = fs.Float64("trust-share", 0.5, "with -trust: queue fraction reserved for overlay queries, scaled by link reputation")
		misDrop    = fs.Float64("mis-drop", 0, "misbehave (harness only): probability of silently dropping a query")
		misForge   = fs.Float64("mis-forge", 0, "misbehave (harness only): probability of forging a QueryHit for a relayed query")
		misBusy    = fs.Float64("mis-busylie", 0, "misbehave (harness only): probability of Busy-refusing a client with capacity to spare")
		misSeed    = fs.Uint64("mis-seed", 1, "seed for the misbehavior draw stream")

		dialTO    = fs.Duration("dial-timeout", 10*time.Second, "TCP dial timeout for peer connections")
		handTO    = fs.Duration("handshake-timeout", 10*time.Second, "hello-exchange timeout")
		writeTO   = fs.Duration("write-timeout", 30*time.Second, "per-message write timeout")
		hbEvery   = fs.Duration("heartbeat", 5*time.Second, "overlay heartbeat interval (0 disables)")
		hbTimeout = fs.Duration("heartbeat-timeout", 0, "silence before a peer is declared dead (0 = 3×heartbeat)")
		drainTO   = fs.Duration("drain-timeout", 2*time.Second, "how long shutdown waits for in-flight queries to finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := spnet.NodeOptions{
		TTL: *ttl, MaxClients: *maxCl, MaxPeers: *maxPeer,
		DialTimeout: *dialTO, HandshakeTimeout: *handTO, WriteTimeout: *writeTO,
		HeartbeatInterval: *hbEvery, HeartbeatTimeout: *hbTimeout,
		DrainTimeout: *drainTO,
	}
	if *hbEvery == 0 {
		opts.HeartbeatInterval = -1 // flag 0 means off; Options treats 0 as "default"
	}
	opts.Trust = *trustOn
	opts.TrustPeerShare = *trustShare
	if *misDrop > 0 || *misForge > 0 || *misBusy > 0 {
		opts.Misbehave = &spnet.MisbehaveOptions{
			Drop: *misDrop, Forge: *misForge, BusyLie: *misBusy, Seed: *misSeed,
		}
	}
	var store *spnet.TransferStore
	if *serveContent {
		store = spnet.NewTransferStore(spnet.TransferStoreOptions{ChunkSize: *contentChunk})
		store.AddSampled(spnet.DefaultLibrary(), *contentFiles, *contentSeed)
		opts.Content = store
		opts.MaxTransfers = *maxTransfers
		opts.TransferRate = *transferRate
	}
	strat, err := spnet.ParseRouting(*routing)
	if err != nil {
		return err
	}
	opts.Routing = strat
	opts.RoutingSeed = *rseed
	if *verbose {
		opts.Logf = log.Printf
	}
	node := spnet.NewNode(opts)
	if err := node.Listen(*listen); err != nil {
		return err
	}
	fmt.Fprintf(out, "super-peer listening on %s (TTL %d, ≤%d clients, ≤%d peers, routing %s)\n",
		node.Addr(), *ttl, *maxCl, *maxPeer, strat.Name())
	if store != nil {
		var total int64
		for _, f := range store.Files() {
			total += f.Size
		}
		rate := "unpaced"
		if *transferRate > 0 {
			rate = fmt.Sprintf("%.0f B/s", *transferRate)
		}
		fmt.Fprintf(out, "serving content: %d titles, %d bytes, chunk %d B, %s\n",
			len(store.Files()), total, store.ChunkSize(), rate)
	}

	var srv *http.Server
	if *telem != "" {
		lis, err := net.Listen("tcp", *telem)
		if err != nil {
			node.Close()
			return fmt.Errorf("telemetry listener: %w", err)
		}
		srv = &http.Server{Handler: spnet.TelemetryHandler(node.Metrics().Registry())}
		go func() {
			if err := srv.Serve(lis); err != http.ErrServerClosed {
				log.Printf("telemetry server: %v", err)
			}
		}()
		node.SetIdentity(*id, lis.Addr().String())
		fmt.Fprintf(out, "telemetry on http://%s/metrics\n", lis.Addr())
	} else {
		node.SetIdentity(*id, "")
	}

	shutdown := func() {
		// Order matters: closing the node deregisters from controllers
		// (RegisterBye) and drains in-flight queries up to DrainTimeout;
		// only then is the telemetry endpoint torn down, so the final
		// counters stay scrapeable through the drain.
		node.Close()
		if srv != nil {
			srv.Close()
		}
	}

	for _, addr := range strings.Split(*peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := node.ConnectPeer(addr); err != nil {
			shutdown()
			return fmt.Errorf("connecting to peer %s: %w", addr, err)
		}
		fmt.Fprintf(out, "connected to peer %s\n", addr)
	}

	if *query != "" {
		results, err := node.Search(*query, *wait)
		if err != nil {
			shutdown()
			return err
		}
		fmt.Fprintf(out, "%d results for %q:\n", len(results), *query)
		for _, r := range results {
			fmt.Fprintf(out, "  %-40s (file %d, owner %d.%d.%d.%d:%d, %d hops)\n",
				r.Title, r.FileIndex,
				r.OwnerIP[0], r.OwnerIP[1], r.OwnerIP[2], r.OwnerIP[3],
				r.OwnerPort, r.Hops)
		}
		shutdown()
		return nil
	}

	if sigc == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		sigc = sig
	}
	s := <-sigc
	fmt.Fprintf(out, "\n%v: draining and shutting down\n", s)
	shutdown()
	return nil
}
