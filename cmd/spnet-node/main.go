// Command spnet-node runs one live super-peer over TCP: it serves clients
// (metadata joins, keyword queries, updates) and connects to other
// super-peers as overlay neighbors, flooding queries with a TTL and
// relaying responses along the reverse path.
//
// Start a small overlay:
//
//	spnet-node -listen 127.0.0.1:7001
//	spnet-node -listen 127.0.0.1:7002 -peers 127.0.0.1:7001
//	spnet-node -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002
//
// Ask a node to run one query itself and exit:
//
//	spnet-node -listen 127.0.0.1:7004 -peers 127.0.0.1:7001 \
//	           -query "free jazz" -wait 2s
//
// Expose load telemetry (Prometheus /metrics, expvar /debug/vars, pprof):
//
//	spnet-node -listen 127.0.0.1:7001 -telemetry 127.0.0.1:9001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"spnet"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "address to serve clients and peers on")
		peers   = flag.String("peers", "", "comma-separated super-peer addresses to connect to")
		ttl     = flag.Int("ttl", 7, "TTL stamped on queries")
		maxCl   = flag.Int("max-clients", 100, "maximum clients (cluster size - 1)")
		maxPeer = flag.Int("max-peers", 30, "maximum overlay neighbors (outdegree)")
		telem   = flag.String("telemetry", "", "serve load telemetry on this address: /metrics (Prometheus), /debug/vars (expvar), /debug/pprof/")
		query   = flag.String("query", "", "run this keyword query from the node itself, print results, and exit")
		wait    = flag.Duration("wait", 2*time.Second, "how long to collect results for -query")
		routing = flag.String("routing", "flood", `query-routing strategy: "flood", "randomwalk[:k]", "routingindex" or "learned"`)
		rseed   = flag.Uint64("routing-seed", 1, "seed for randomized routing strategies")
		verbose = flag.Bool("v", false, "log protocol diagnostics")

		trustOn    = flag.Bool("trust", false, "reputation defenses: validate QueryHits, score neighbor links (spnet_peer_reputation), trust-weighted overlay admission")
		trustShare = flag.Float64("trust-share", 0.5, "with -trust: queue fraction reserved for overlay queries, scaled by link reputation")
		misDrop    = flag.Float64("mis-drop", 0, "misbehave (harness only): probability of silently dropping a query")
		misForge   = flag.Float64("mis-forge", 0, "misbehave (harness only): probability of forging a QueryHit for a relayed query")
		misBusy    = flag.Float64("mis-busylie", 0, "misbehave (harness only): probability of Busy-refusing a client with capacity to spare")
		misSeed    = flag.Uint64("mis-seed", 1, "seed for the misbehavior draw stream")

		dialTO    = flag.Duration("dial-timeout", 10*time.Second, "TCP dial timeout for peer connections")
		handTO    = flag.Duration("handshake-timeout", 10*time.Second, "hello-exchange timeout")
		writeTO   = flag.Duration("write-timeout", 30*time.Second, "per-message write timeout")
		hbEvery   = flag.Duration("heartbeat", 5*time.Second, "overlay heartbeat interval (0 disables)")
		hbTimeout = flag.Duration("heartbeat-timeout", 0, "silence before a peer is declared dead (0 = 3×heartbeat)")
	)
	flag.Parse()

	opts := spnet.NodeOptions{
		TTL: *ttl, MaxClients: *maxCl, MaxPeers: *maxPeer,
		DialTimeout: *dialTO, HandshakeTimeout: *handTO, WriteTimeout: *writeTO,
		HeartbeatInterval: *hbEvery, HeartbeatTimeout: *hbTimeout,
	}
	if *hbEvery == 0 {
		opts.HeartbeatInterval = -1 // flag 0 means off; Options treats 0 as "default"
	}
	opts.Trust = *trustOn
	opts.TrustPeerShare = *trustShare
	if *misDrop > 0 || *misForge > 0 || *misBusy > 0 {
		opts.Misbehave = &spnet.MisbehaveOptions{
			Drop: *misDrop, Forge: *misForge, BusyLie: *misBusy, Seed: *misSeed,
		}
	}
	strat, err := spnet.ParseRouting(*routing)
	if err != nil {
		log.Fatal(err)
	}
	opts.Routing = strat
	opts.RoutingSeed = *rseed
	if *verbose {
		opts.Logf = log.Printf
	}
	node := spnet.NewNode(opts)
	if err := node.Listen(*listen); err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Printf("super-peer listening on %s (TTL %d, ≤%d clients, ≤%d peers, routing %s)\n",
		node.Addr(), *ttl, *maxCl, *maxPeer, strat.Name())

	if *telem != "" {
		lis, err := net.Listen("tcp", *telem)
		if err != nil {
			log.Fatalf("telemetry listener: %v", err)
		}
		srv := &http.Server{Handler: spnet.TelemetryHandler(node.Metrics().Registry())}
		go func() {
			if err := srv.Serve(lis); err != http.ErrServerClosed {
				log.Printf("telemetry server: %v", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", lis.Addr())
	}

	for _, addr := range strings.Split(*peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := node.ConnectPeer(addr); err != nil {
			log.Fatalf("connecting to peer %s: %v", addr, err)
		}
		fmt.Printf("connected to peer %s\n", addr)
	}

	if *query != "" {
		results, err := node.Search(*query, *wait)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d results for %q:\n", len(results), *query)
		for _, r := range results {
			fmt.Printf("  %-40s (file %d, owner %d.%d.%d.%d:%d, %d hops)\n",
				r.Title, r.FileIndex,
				r.OwnerIP[0], r.OwnerIP[1], r.OwnerIP[2], r.OwnerIP[3],
				r.OwnerPort, r.Hops)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
}
