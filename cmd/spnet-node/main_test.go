package main

import (
	"bytes"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// waitFor polls cond with a generous deadline (CI runs -race on one CPU).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// output is a goroutine-safe buffer: run() writes from the main goroutine
// while assertions read from the test goroutine.
type output struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (o *output) Write(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buf.Write(p)
}

func (o *output) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buf.String()
}

// TestRunShutsDownGracefullyOnSIGTERM boots a real node through run() with
// telemetry enabled, delivers an actual SIGTERM to the process, and checks
// run returns cleanly, reported the drain, and leaked no goroutines.
func TestRunShutsDownGracefullyOnSIGTERM(t *testing.T) {
	// The runtime's signal-delivery goroutine is spawned on first Notify and
	// lives for the rest of the process; warm it up so the leak baseline
	// includes it.
	warm := make(chan os.Signal, 1)
	signal.Notify(warm, syscall.SIGHUP)
	signal.Stop(warm)
	before := runtime.NumGoroutine()

	var out output
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-telemetry", "127.0.0.1:0",
			"-id", "sp-test",
			"-drain-timeout", "100ms",
		}, &out, nil)
	}()

	// Wait until the node is serving and telemetry answers, so the signal
	// lands on a fully started process.
	waitFor(t, "node startup banner", func() bool {
		s := out.String()
		return strings.Contains(s, "super-peer listening on") &&
			strings.Contains(s, "telemetry on http://")
	})
	telURL := ""
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "telemetry on "); ok {
			telURL = rest // already ends in /metrics
		}
	}
	if telURL == "" {
		t.Fatalf("no telemetry URL in output:\n%s", out.String())
	}
	waitFor(t, "telemetry scrapeable", func() bool {
		resp, err := http.Get(telURL)
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error: %v", err)
		}
	case <-time.After(15 * time.Second):
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("run did not return after SIGTERM\n%s", buf[:n])
	}
	if !strings.Contains(out.String(), "draining and shutting down") {
		t.Errorf("missing shutdown message in output:\n%s", out.String())
	}

	// Leak check: everything run() started must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRunQueryModeExitsWithoutSignal pins the -query one-shot path: run()
// returns on its own, no signal needed, and still cleans up.
func TestRunQueryModeExitsWithoutSignal(t *testing.T) {
	before := runtime.NumGoroutine()
	var out output
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-query", "anything",
		"-wait", "50ms",
		"-drain-timeout", "50ms",
	}, &out, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), `results for "anything"`) {
		t.Errorf("missing query report:\n%s", out.String())
	}
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// TestRunRejectsBadFlags checks run() surfaces errors instead of exiting the
// process, which is what makes it testable.
func TestRunRejectsBadFlags(t *testing.T) {
	var out output
	if err := run([]string{"-routing", "bogus"}, &out, nil); err == nil {
		t.Error("bad -routing accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}
