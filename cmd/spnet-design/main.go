// Command spnet-design runs the paper's global design procedure (Figure 10):
// given a network size, a desired reach and per-super-peer limits, it
// selects the cluster size, redundancy, outdegree and TTL, and prints the
// predicted performance of the chosen configuration.
//
// Example — the Section 5.2 walk-through (20000 peers, reach 3000,
// 100 Kbps each way, 10 MHz, 100 connections):
//
//	spnet-design -size 20000 -reach 3000 -down 100000 -up 100000 \
//	             -proc 10000000 -conns 100
package main

import (
	"flag"
	"fmt"
	"os"

	"spnet"
)

func main() {
	var (
		size       = flag.Int("size", 20000, "number of peers in the network")
		reach      = flag.Int("reach", 3000, "desired reach in peers")
		down       = flag.Float64("down", 100_000, "max super-peer incoming bandwidth (bps)")
		up         = flag.Float64("up", 100_000, "max super-peer outgoing bandwidth (bps)")
		proc       = flag.Float64("proc", 10_000_000, "max super-peer processing (Hz)")
		conns      = flag.Int("conns", 100, "max super-peer open connections")
		redundancy = flag.Bool("allow-redundancy", false, "allow 2-redundant super-peers")
		trials     = flag.Int("trials", 2, "trials per candidate evaluation")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "candidate-evaluation workers (0 = all cores, 1 = serial); the selected plan is identical at any setting")
	)
	flag.Parse()

	plan, err := spnet.Design(
		spnet.Goals{NetworkSize: *size, DesiredReach: *reach},
		spnet.Constraints{
			MaxDownBps:      *down,
			MaxUpBps:        *up,
			MaxProcHz:       *proc,
			MaxConns:        *conns,
			AllowRedundancy: *redundancy,
		},
		spnet.DesignOptions{Trials: *trials, Seed: *seed, Workers: *workers},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "design failed:", err)
		os.Exit(1)
	}

	fmt.Println("procedure trace:")
	for _, step := range plan.Steps {
		fmt.Println("  ", step)
	}
	fmt.Println("\nselected configuration:")
	fmt.Printf("  %v\n", plan.Config)
	if plan.ReachShortfall > 0 {
		fmt.Printf("  NOTE: desired reach reduced by %.0f%% to stay feasible\n",
			100*plan.ReachShortfall)
	}
	p := plan.Predicted
	fmt.Println("\npredicted performance:")
	fmt.Printf("  super-peer load:  in %v, out %v, proc %v\n",
		p.SuperPeer.InBps, p.SuperPeer.OutBps, p.SuperPeer.ProcHz)
	fmt.Printf("  client load:      in %v, out %v\n", p.Client.InBps, p.Client.OutBps)
	fmt.Printf("  aggregate load:   in %v, out %v, proc %v\n",
		p.Aggregate.InBps, p.Aggregate.OutBps, p.Aggregate.ProcHz)
	fmt.Printf("  results/query:    %v\n", p.ResultsPerQuery)
	fmt.Printf("  reach:            %v peers\n", p.ReachPeers)
	fmt.Printf("  EPL:              %v\n", p.EPL)
}
