// Command spnet-eval evaluates one super-peer network configuration with
// the paper's mean-value analysis and prints expected loads, result quality
// and traversal metrics with 95% confidence intervals.
//
// Example — the Table 1 default configuration:
//
//	spnet-eval
//
// Example — a 2-redundant network with a denser overlay:
//
//	spnet-eval -size 20000 -cluster 20 -redundancy -outdeg 10 -ttl 4 -trials 5
//
// Example — additionally price a 64 MiB multi-source download with the
// content-transfer extension (wire bytes, efficiency, throughput bound):
//
//	spnet-eval -transfer-size 67108864 -transfer-sources 3 -transfer-rate 262144
package main

import (
	"flag"
	"fmt"
	"os"

	"spnet"
)

func main() {
	def := spnet.DefaultConfig()
	var (
		graphType  = flag.String("graph", "power", `overlay type: "power" or "strong"`)
		size       = flag.Int("size", def.GraphSize, "number of peers")
		cluster    = flag.Int("cluster", def.ClusterSize, "cluster size (nodes incl. super-peer)")
		redundancy = flag.Bool("redundancy", false, "use 2-redundant virtual super-peers")
		outdeg     = flag.Float64("outdeg", def.AvgOutdegree, "average super-peer outdegree")
		ttl        = flag.Int("ttl", def.TTL, "query TTL")
		trials     = flag.Int("trials", 3, "independent instance trials")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "evaluation workers (0 = all cores, 1 = serial); output is identical at any setting")
		lowQuery   = flag.Bool("low-query-rate", false, "use the Appendix C tenfold-lower query rate")

		xferSize    = flag.Int64("transfer-size", 0, "also price a content download of this many bytes (0 = off)")
		xferChunk   = flag.Int("transfer-chunk", 64<<10, "chunk size for -transfer-size")
		xferSources = flag.Int("transfer-sources", 3, "parallel sources for -transfer-size")
		xferRate    = flag.Float64("transfer-rate", 256<<10, "per-source serving rate in bytes/sec for -transfer-size (0 = unpaced)")
	)
	flag.Parse()

	cfg := spnet.Config{
		GraphSize:    *size,
		ClusterSize:  *cluster,
		Redundancy:   *redundancy,
		AvgOutdegree: *outdeg,
		TTL:          *ttl,
	}
	switch *graphType {
	case "power":
		cfg.GraphType = spnet.PowerLaw
	case "strong":
		cfg.GraphType = spnet.Strong
	default:
		fmt.Fprintf(os.Stderr, "unknown -graph %q (want power or strong)\n", *graphType)
		os.Exit(2)
	}
	prof := spnet.DefaultProfile()
	if *lowQuery {
		prof.Rates.QueryRate /= 10
	}

	sum, err := spnet.RunTrialsWorkers(cfg, prof, *trials, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Printf("configuration: %v\n", cfg)
	fmt.Printf("trials: %d\n\n", sum.Trials)
	fmt.Printf("%-26s %-22s %-22s %-22s\n", "", "incoming bw (bps)", "outgoing bw (bps)", "processing (Hz)")
	row := func(name string, ls [3]string) {
		fmt.Printf("%-26s %-22s %-22s %-22s\n", name, ls[0], ls[1], ls[2])
	}
	fmtS := func(s interface{ String() string }) string { return s.String() }
	row("aggregate (eq. 4)", [3]string{
		fmtS(sum.Aggregate.InBps), fmtS(sum.Aggregate.OutBps), fmtS(sum.Aggregate.ProcHz)})
	row("per super-peer (eq. 3)", [3]string{
		fmtS(sum.SuperPeer.InBps), fmtS(sum.SuperPeer.OutBps), fmtS(sum.SuperPeer.ProcHz)})
	row("per client (eq. 3)", [3]string{
		fmtS(sum.Client.InBps), fmtS(sum.Client.OutBps), fmtS(sum.Client.ProcHz)})
	fmt.Printf("\nresults per query (eq. 2): %v\n", sum.ResultsPerQuery)
	fmt.Printf("expected path length:      %v\n", sum.EPL)
	fmt.Printf("reach:                     %v clusters, %v peers\n",
		sum.ReachClusters, sum.ReachPeers)

	if *xferSize > 0 {
		p, err := spnet.PredictTransfer(spnet.TransferWorkload{
			FileSize:      *xferSize,
			ChunkSize:     *xferChunk,
			Sources:       *xferSources,
			SourceRateBps: *xferRate,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\ncontent transfer (extension): %d bytes, %d-byte chunks, %d sources\n",
			*xferSize, *xferChunk, *xferSources)
		fmt.Printf("%-26s %-22s %-22s %-22s\n",
			"", "transfer bw (bps)", "wire bytes", "efficiency")
		if p.ThroughputBps > 0 {
			row("per download", [3]string{
				fmt.Sprintf("%.0f", p.ThroughputBps),
				fmt.Sprintf("%d", p.WireBytes),
				fmt.Sprintf("%.4f", p.Efficiency)})
			fmt.Printf("predicted duration:        %.2fs over %d chunks\n",
				p.DurationSec, p.Chunks)
		} else {
			row("per download (unpaced)", [3]string{
				"-",
				fmt.Sprintf("%d", p.WireBytes),
				fmt.Sprintf("%.4f", p.Efficiency)})
		}
	}
}
