// Package spnet is a library for designing and evaluating super-peer
// peer-to-peer networks, reproducing Yang & Garcia-Molina, "Designing a
// Super-Peer Network" (ICDE 2003).
//
// A super-peer network is a P2P overlay in which each node of the overlay is
// a super-peer serving a cluster of clients: clients submit queries to their
// super-peer, which answers from an index of its clients' collections and
// floods the query over the super-peer overlay with a TTL, Gnutella-style.
// The paper analyzes how cluster size, 2-redundant "virtual" super-peers,
// overlay outdegree and TTL trade off aggregate load, individual load,
// reliability and result quality — and distills rules of thumb, a global
// design procedure, and local adaptation rules.
//
// The library provides:
//
//   - Configuration and instance generation (Table 1, Section 4.1 Step 1):
//     Config, Generate, with PLOD power-law or strongly connected overlays
//     and measured-style workloads (Profile).
//   - The mean-value analysis engine (Steps 2–4): Evaluate for one instance,
//     RunTrials for repeated trials with 95% confidence intervals. Results
//     expose per-node, group and aggregate loads along incoming bandwidth,
//     outgoing bandwidth and processing power, plus results per query, reach
//     and expected path length.
//   - The global design procedure of Figure 10 (Design) and the TTL/EPL
//     helpers of rule #4 and Appendix F (PredictTTL, PredictEPL, MeasureEPL).
//   - The Section 5.3 local decision rules (Advise) and a deterministic
//     discrete-event, message-level simulator (Simulate) that validates the
//     analysis and runs the local rules under churn.
//   - An experiment harness regenerating every table and figure of the
//     paper's evaluation (RunExperiment, ExperimentIDs).
//
// Quick start:
//
//	cfg := spnet.DefaultConfig()          // Table 1 defaults
//	inst, err := spnet.Generate(cfg, nil, 42)
//	if err != nil { ... }
//	res := spnet.Evaluate(inst)
//	fmt.Println(res.MeanSuperPeerLoad(), res.ResultsPerQuery)
package spnet

import (
	"net/http"

	"spnet/internal/analysis"
	"spnet/internal/content"
	"spnet/internal/control"
	"spnet/internal/design"
	"spnet/internal/experiments"
	"spnet/internal/faults"
	"spnet/internal/metrics"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/routing"
	"spnet/internal/sim"
	"spnet/internal/stats"
	"spnet/internal/transfer"
	"spnet/internal/workload"
)

// Config is a network configuration: the paper's Table 1 parameters.
type Config = network.Config

// GraphType selects the overlay topology.
type GraphType = network.GraphType

// Overlay topology kinds.
const (
	// Strong is the strongly connected (complete) super-peer overlay.
	Strong = network.Strong
	// PowerLaw is a PLOD-generated power-law overlay like Gnutella's.
	PowerLaw = network.PowerLaw
)

// DefaultConfig returns the paper's Table 1 defaults: a power-law network of
// 10000 peers, cluster size 10, no redundancy, average outdegree 3.1, TTL 7.
func DefaultConfig() Config { return network.DefaultConfig() }

// Profile describes user behavior: the query model (Appendix B), file-count
// and session-lifespan distributions, action rates and query length.
type Profile = workload.Profile

// DefaultProfile returns the calibrated default workload (see DESIGN.md for
// the calibration anchors).
func DefaultProfile() *Profile { return workload.DefaultProfile() }

// QueryModel is the query model of Appendix B: query-class popularity g(j)
// and per-class selection power f(j).
type QueryModel = workload.QueryModel

// NewQueryModel builds a query model from explicit popularity and selection
// power vectors.
func NewQueryModel(g, f []float64) (*QueryModel, error) {
	return workload.NewQueryModel(g, f)
}

// Instance is one realized network: an overlay of clusters with sampled
// clients, file counts and lifespans.
type Instance = network.Instance

// Generate realizes a configuration into an instance. A nil profile selects
// the default workload. The same (config, profile, seed) always produces the
// same instance.
func Generate(cfg Config, prof *Profile, seed uint64) (*Instance, error) {
	return network.Generate(cfg, prof, stats.NewRNG(seed))
}

// Load is work per unit time along the paper's three resource types:
// incoming bandwidth (bps), outgoing bandwidth (bps), processing power (Hz).
type Load = analysis.Load

// Result is the mean-value analysis of one instance: per-node expected loads
// (eq. 1), results per query (eq. 2), group loads (eq. 3), aggregate load
// (eq. 4), reach and expected path length.
type Result = analysis.Result

// Evaluate runs the paper's mean-value analysis over one instance.
func Evaluate(inst *Instance) *Result { return analysis.Evaluate(inst) }

// RoutingStrategy decides, per hop, which overlay neighbors receive a query —
// the pluggable replacement for the paper's hardcoded TTL flood. The same
// strategy value drives the simulator (SimOptions.Routing), live nodes
// (NodeOptions.Routing) and, through RoutingForwards, the analysis engine.
type RoutingStrategy = routing.Strategy

// RoutingForwards is a strategy's analytic model: the expected number of
// query copies a node with d eligible neighbors forwards, at the source and
// at relays. EvaluateStrategy consumes it.
type RoutingForwards = routing.Forwards

// ParseRouting builds a strategy from a flag-style spec: "flood",
// "randomwalk" (optionally "randomwalk:k"), "routingindex" or "learned".
func ParseRouting(spec string) (RoutingStrategy, error) { return routing.Parse(spec) }

// RoutingNames lists the built-in routing strategy names.
func RoutingNames() []string { return routing.Names() }

// FloodForwards, RandomWalkForwards and ConstForwards build the analytic
// forward models for the built-in strategies.
func FloodForwards() *RoutingForwards           { return routing.FloodForwards() }
func RandomWalkForwards(k int) *RoutingForwards { return routing.RandomWalkForwards(k) }
func ConstForwards(name string, source, relay float64) *RoutingForwards {
	return routing.ConstForwards(name, source, relay)
}

// EvaluateStrategy runs the mean-value analysis with a routing strategy's
// forward model in place of the flood: each hop forwards fw.Source/fw.Relay
// copies in expectation instead of one per eligible neighbor, scaling query
// traffic, results and reach accordingly. A nil fw is the exact flood
// evaluation (identical to Evaluate).
func EvaluateStrategy(inst *Instance, fw *RoutingForwards) *Result {
	return analysis.EvaluateStrategy(inst, fw)
}

// EvaluateAdversarial runs the mean-value analysis with each non-source relay
// behaving honestly only with probability honest — the analytic counterpart
// of SimOptions.Adversary, where honest = 1 − (malicious fraction)·Drop.
// honest = 1 is identical to Evaluate/EvaluateStrategy.
func EvaluateAdversarial(inst *Instance, fw *RoutingForwards, honest float64) *Result {
	return analysis.EvaluateAdversarial(inst, fw, honest)
}

// Breakdown attributes aggregate load to protocol components (query
// transfer, query processing, response transfer, joins, updates, packet
// multiplex); obtain one from Result.LoadBreakdown.
type Breakdown = analysis.Breakdown

// TrialSummary is Step 4's output: expected loads over repeated instance
// trials with 95% confidence intervals.
type TrialSummary = analysis.TrialSummary

// RunTrials generates and evaluates `trials` independent instances of cfg
// and summarizes the results with 95% confidence intervals. Trials evaluate
// in parallel on GOMAXPROCS workers; the output is bit-identical to a serial
// run (each trial is keyed by its own pre-split RNG stream and the summary
// reduces in trial order).
func RunTrials(cfg Config, prof *Profile, trials int, seed uint64) (*TrialSummary, error) {
	return analysis.RunTrials(cfg, prof, trials, seed)
}

// RunTrialsWorkers is RunTrials with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Output is identical at any setting.
func RunTrialsWorkers(cfg Config, prof *Profile, trials int, seed uint64, workers int) (*TrialSummary, error) {
	return analysis.RunTrialsWorkers(cfg, prof, trials, seed, workers)
}

// Goals, Constraints, DesignOptions and Plan parameterize the global design
// procedure of Figure 10.
type (
	Goals         = design.Goals
	Constraints   = design.Constraints
	DesignOptions = design.Options
	Plan          = design.Plan
)

// Design runs the global design procedure: given a network size, a desired
// reach and per-super-peer load limits, it selects cluster size, redundancy,
// outdegree and TTL.
func Design(goals Goals, cons Constraints, opts DesignOptions) (*Plan, error) {
	return design.Run(goals, cons, opts)
}

// PredictEPL approximates the expected path length for a desired reach (in
// clusters) at an average outdegree: EPL ≈ log_d(reach) (Appendix F).
func PredictEPL(avgOutdegree float64, reachClusters int) float64 {
	return design.PredictEPL(avgOutdegree, reachClusters)
}

// PredictTTL returns the TTL to use for a desired reach at an average
// outdegree (rule #4 with the Appendix F adjustment).
func PredictTTL(avgOutdegree float64, reachClusters int) int {
	return design.PredictTTL(avgOutdegree, reachClusters)
}

// MeasureEPL experimentally determines the expected path length for a
// desired reach on power-law topologies (the Figure 9 measurement).
func MeasureEPL(n int, avgOutdegree float64, reach, trials int, seed uint64) (float64, error) {
	return design.MeasureEPL(n, avgOutdegree, reach, trials, stats.NewRNG(seed))
}

// LocalState, Thresholds and Advice implement the Section 5.3 local decision
// rules for one super-peer.
type (
	LocalState = design.LocalState
	Thresholds = design.Thresholds
	Advice     = design.Advice
)

// Advise applies the Section 5.3 guidelines to one super-peer's local state.
func Advise(s LocalState, th Thresholds) Advice { return design.Advise(s, th) }

// SimOptions, AdaptiveOptions and Measured parameterize the discrete-event
// message-level simulator.
type (
	SimOptions       = sim.Options
	AdaptiveOptions  = sim.AdaptiveOptions
	FailureOptions   = sim.FailureOptions
	ContentOptions   = sim.ContentOptions
	AdversaryOptions = sim.AdversaryOptions
	Measured         = sim.Measured
)

// Library generates synthetic file titles and keyword queries over a Zipf
// vocabulary — the corpus behind the simulator's content mode and the
// BuildQueryModel calibration bridge.
type Library = content.Library

// NewLibrary builds a vocabulary of vocabSize terms with Zipf popularity.
func NewLibrary(vocabSize int, exponent float64) (*Library, error) {
	return content.NewLibrary(vocabSize, exponent)
}

// DefaultLibrary returns the calibrated default corpus generator.
func DefaultLibrary() *Library { return content.DefaultLibrary() }

// BuildQueryModel measures each query class's selection power over a
// sampled corpus and returns the matching Appendix B query model.
func BuildQueryModel(lib *Library, seed uint64, corpusFiles int) (*QueryModel, error) {
	return lib.BuildQueryModel(stats.NewRNG(seed), corpusFiles)
}

// Simulate executes the super-peer protocol concretely over an instance on a
// virtual clock, counting every byte and processing unit. With
// SimOptions.Adaptive set it also runs the local decision rules.
func Simulate(inst *Instance, opts SimOptions) (*Measured, error) {
	return sim.Run(inst, opts)
}

// ExperimentParams and ExperimentReport parameterize the paper-evaluation
// harness.
type (
	ExperimentParams = experiments.Params
	ExperimentReport = experiments.Report
)

// ExperimentIDs lists the reproducible paper artifacts (tables and figures).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitles maps experiment ids to descriptions.
func ExperimentTitles() map[string]string { return experiments.Titles() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, p ExperimentParams) (*ExperimentReport, error) {
	return experiments.Run(id, p)
}

// FormatReport renders an experiment report as readable text.
func FormatReport(r *ExperimentReport) string { return experiments.Format(r) }

// WriteReportCSV writes a report's tables and series as CSV files under dir
// and returns the paths written.
func WriteReportCSV(r *ExperimentReport, dir string) ([]string, error) {
	return experiments.WriteCSV(r, dir)
}

// ReportCSVStream writes sweep rows to per-stage CSV files incrementally,
// flushing after every row, so interrupted runs keep the sweep points that
// completed. Plug its Row method into ExperimentParams.RowSink or
// LiveReliabilityParams.RowSink.
type ReportCSVStream = experiments.CSVStream

// NewReportCSVStream creates a streaming CSV exporter for the given report
// id under dir.
func NewReportCSVStream(id, dir string) (*ReportCSVStream, error) {
	return experiments.NewCSVStream(id, dir)
}

// LiveReliabilityParams and LiveReliabilityRegime shape the live reliability
// experiment: the reliability experiment's failure regimes replayed against
// a real TCP super-peer network through a wall-clock ↔ virtual-time bridge,
// with seeded Poisson client query workloads.
type (
	LiveReliabilityParams = experiments.LiveParams
	LiveReliabilityRegime = experiments.LiveRegime
)

// RunLiveReliability measures lost-query fraction, recovery time and
// partial-result degradation on a live network, side by side with the
// simulated reliability table.
func RunLiveReliability(lp LiveReliabilityParams) (*ExperimentReport, error) {
	return experiments.RunLiveReliability(lp)
}

// Node, NodeOptions, NodeClient and friends are the runnable super-peer
// implementation over TCP: a Node serves clients and peers concurrently,
// maintains an inverted index over its clients' titles, floods keyword
// queries over its overlay links with a TTL, and routes Response messages
// back along the reverse path — the system the paper models, live.
type (
	Node                = p2p.Node
	NodeOptions         = p2p.Options
	MisbehaveOptions    = p2p.MisbehaveOptions
	NodeStats           = p2p.Stats
	NodeClient          = p2p.Client
	SharedFile          = p2p.SharedFile
	SearchResult        = p2p.SearchResult
	SearchOutcome       = p2p.SearchOutcome
	ClientSearchOutcome = p2p.ClientSearchOutcome
	NeighborStatus      = p2p.NeighborStatus
)

// Content transfer plane: QueryHits name who has a file; the transfer plane
// actually moves it. A TransferStore holds deterministically generated,
// pre-hashed content a node serves chunk-by-chunk (NodeOptions.Content) under
// its own inflight and bandwidth caps, and Fetch downloads one file from
// several such nodes in parallel — pipelined chunk requests per source,
// per-chunk hash verification against the manifest, seeded retry/backoff,
// reputation-scored source abandonment and resume from a chunk bitmap.
// Every transfer frame is metered as its own load class, so downloads are
// priced side by side with the paper's query/response/join/update taxonomy.
type (
	TransferStore        = transfer.Store
	TransferStoreOptions = transfer.StoreOptions
	TransferFile         = transfer.File
	TransferSource       = transfer.Source
	TransferOptions      = transfer.Options
	TransferBackoff      = transfer.Backoff
	TransferResult       = transfer.Result
	TransferProgress     = transfer.Progress
	TransferSourceStats  = transfer.SourceStats
	TransferManifest     = transfer.Manifest
)

// NewTransferStore builds an empty content store; Add titles to it, then hand
// it to one or more nodes via NodeOptions.Content. A single store can back a
// whole fleet serving identical content — the basis of multi-source fetches.
func NewTransferStore(opts TransferStoreOptions) *TransferStore { return transfer.NewStore(opts) }

// Fetch downloads one file from the given sources concurrently and returns
// the verified bytes. Sources usually come from TransferSourcesFor over a
// search's results.
func Fetch(sources []TransferSource, opts TransferOptions) (*TransferResult, error) {
	return transfer.Fetch(sources, opts)
}

// ResumeFetch continues an interrupted download from a prior Result's
// Progress, refetching only the chunks the bitmap is missing.
func ResumeFetch(sources []TransferSource, prev *TransferProgress, opts TransferOptions) (*TransferResult, error) {
	return transfer.Resume(sources, prev, opts)
}

// TransferSourcesFor distills search results into dialable download sources
// for an exact title: every distinct responder that advertised it.
func TransferSourcesFor(results []SearchResult, title string) []TransferSource {
	return p2p.TransferSources(results, title)
}

// TransferContentSize and TransferContentHash expose the deterministic
// content model: the size and sha256 a store-served title always has, so
// callers can verify a completed download end to end without trusting any
// source.
func TransferContentSize(title string, minSize, maxSize int64) int64 {
	return transfer.ContentSize(title, minSize, maxSize)
}
func TransferContentHash(title string, size int64) [32]byte {
	return transfer.ContentHash(title, size)
}

// TransferWorkload and TransferPrediction parameterize PredictTransfer, the
// analytical price of a download: exact wire bytes (chunk framing included),
// protocol efficiency, and the rate-cap throughput/duration bound.
type (
	TransferWorkload   = analysis.TransferWorkload
	TransferPrediction = analysis.TransferPrediction
)

// PredictTransfer prices a chunked multi-source download analytically, the
// same way Evaluate prices query traffic.
func PredictTransfer(w TransferWorkload) (*TransferPrediction, error) {
	return analysis.PredictTransfer(w)
}

// TransferBenchParams shape RunTransferBench: a live fleet serves one file
// from every cluster, a downloader fetches it multi-source, telemetry is
// scraped for transfer-class wire bytes, and a failover drill kills a source
// mid-download — all compared against PredictTransfer.
type TransferBenchParams = experiments.TransferBenchParams

// RunTransferBench runs the transfer-plane validation experiment and renders
// its report.
func RunTransferBench(p TransferBenchParams) (*ExperimentReport, error) {
	return experiments.RunTransferBench(p)
}

// ClientDialOptions, ClientBackoff and ClientEvent configure a supervised
// client: a ranked list of redundant partner super-peers (the paper's
// k-redundancy), exponential backoff with seeded jitter, automatic re-join
// after failover, and an event stream for observing recovery.
type (
	ClientDialOptions = p2p.DialOptions
	ClientBackoff     = p2p.Backoff
	ClientEvent       = p2p.Event
	ClientEventType   = p2p.EventType
)

// Client failover events, in the order a recovery emits them.
const (
	EventConnLost    = p2p.EventConnLost
	EventBackoff     = p2p.EventBackoff
	EventDialFailed  = p2p.EventDialFailed
	EventReconnected = p2p.EventReconnected
	EventRejoined    = p2p.EventRejoined
	EventGaveUp      = p2p.EventGaveUp
)

// NewNode creates a super-peer; call its Listen method to start serving.
func NewNode(opts NodeOptions) *Node { return p2p.NewNode(opts) }

// DialSuperPeer connects as a client to a running super-peer and joins with
// the given shared collection.
func DialSuperPeer(addr string, files []SharedFile) (*NodeClient, error) {
	return p2p.DialClient(addr, files)
}

// DialSuperPeers connects as a supervised client with failover across a
// ranked super-peer list.
func DialSuperPeers(opts ClientDialOptions, files []SharedFile) (*NodeClient, error) {
	return p2p.DialClientOptions(opts, files)
}

// FaultController, FaultRule and FailureSchedule are the deterministic fault
// injection layer: a seeded controller that wraps live connections to inject
// message drop, delay, truncation, connection resets and partitions, plus
// shared failure schedules that replay identically in the simulator
// (FailureOptions.Schedule) and against live networks.
type (
	FaultController = faults.Controller
	FaultRule       = faults.Rule
	FailureSchedule = faults.Schedule
	PartnerFailure  = faults.PartnerFailure
)

// NewFaultController creates a deterministic, seed-driven fault injector.
func NewFaultController(seed uint64) *FaultController { return faults.NewController(seed) }

// ExponentialFailureSchedule draws a reproducible failure schedule with
// exponentially distributed inter-failure gaps (mean mtbf) for every partner
// of every cluster over the given duration.
func ExponentialFailureSchedule(seed uint64, clusters, partners int, mtbf, duration float64) FailureSchedule {
	return faults.ExponentialSchedule(seed, clusters, partners, mtbf, duration)
}

// LiveNetwork runs a real super-peer network on loopback and orchestrates
// churn against it: killing and restarting super-peers, partitioning
// clusters, and injecting link faults through its FaultController.
type (
	LiveNetwork = network.Live
	LiveConfig  = network.LiveConfig
)

// NewLiveNetwork builds the live churn harness; call its Launch method to
// boot the network.
func NewLiveNetwork(cfg LiveConfig) *LiveNetwork { return network.NewLive(cfg) }

// Metrics types: every live node carries a dependency-free metrics registry
// whose counters attribute each byte and message to the paper's Table 2 load
// taxonomy — {query, response, join, update, busy, ping} × {in, out} — with
// hot-path updates that are atomic and allocation-free. The simulator and
// the analytical model emit the same series names, so the three layers'
// measurements are directly comparable.
type (
	MetricsRegistry = metrics.Registry
	NodeMetrics     = metrics.NodeMetrics
	LoadByClass     = metrics.ByClass
	MessageClass    = metrics.Class
	MessageDir      = metrics.Dir
	SuperPeerInfo   = network.SuperPeerInfo
)

// TelemetryHandler serves a registry over HTTP: Prometheus text format on
// /metrics, expvar JSON on /debug/vars, and the net/http/pprof profiles on
// /debug/pprof/. spnet-node's -telemetry flag and LiveConfig.Telemetry use
// this same handler.
func TelemetryHandler(reg *MetricsRegistry) http.Handler { return metrics.Handler(reg) }

// Fleet control plane: a FleetController scrapes every super-peer's
// telemetry, watches their control links, and pushes the Section 5.3 local
// decision rules to live nodes as epoch-versioned idempotent directives —
// partner promotion on death or re-registration storms, cluster split on
// sustained overload, coalesce on underload, TTL decay under bandwidth
// pressure. Nodes keep serving on their last-applied configuration whenever
// the controller is unreachable, and a restarted controller rebuilds its
// epoch watermark from the fleet's Register announcements.
type (
	FleetController     = control.Controller
	FleetOptions        = control.Options
	FleetNodeConfig     = control.NodeConfig
	FleetEvent          = control.Event
	FleetEventType      = control.EventType
	FleetNodeStatus     = control.NodeStatus
	FleetControlBackoff = control.Backoff
)

// Fleet controller events, in rough lifecycle order.
const (
	FleetRegistered   = control.EvRegistered
	FleetDeregistered = control.EvDeregistered
	FleetLinkDown     = control.EvLinkDown
	FleetScrapeFailed = control.EvScrapeFailed
	FleetDead         = control.EvDead
	FleetRecovered    = control.EvRecovered
	FleetPushed       = control.EvPushed
	FleetAcked        = control.EvAcked
	FleetPushFailed   = control.EvPushFailed
	FleetHotspot      = control.EvHotspot
	FleetUnderload    = control.EvUnderload
)

// NewFleetController builds a controller over the given fleet; call Start to
// launch its control links and decision loop, Close to stop it.
func NewFleetController(opts FleetOptions) *FleetController { return control.New(opts) }

// FleetPredictedLoad folds an analytical per-class bandwidth prediction
// (Result.SuperPeerClassBps) into the load-limit form FleetOptions.Limit
// expects, scaled by headroom.
func FleetPredictedLoad(b LoadByClass, headroom float64) Load {
	return control.PredictedLoad(b, headroom)
}

// SelfHealParams shape RunSelfHeal: a live fleet loses a loaded super-peer
// mid-run, once with the fleet controller watching and once without, and the
// lost-query fraction quantifies what the pushed Section 5.3 rules buy.
type SelfHealParams = experiments.SelfHealParams

// SelfHealResult carries the raw self-healing measurements.
type SelfHealResult = experiments.SelfHealResult

// RunSelfHeal runs the self-healing experiment and renders the comparison
// table (controller off vs on vs the sim-adaptive baseline).
func RunSelfHeal(p SelfHealParams) (*ExperimentReport, error) {
	return experiments.RunSelfHeal(p)
}

// LoadValidationParams shape RunLoadValidation, the model-vs-measured
// validation experiment.
type LoadValidationParams = experiments.LoadValidationParams

// RoutingCompareParams shape RunRoutingCompare, the three-way routing
// strategy comparison.
type RoutingCompareParams = experiments.RoutingCompareParams

// RunRoutingCompare prices each routing strategy analytically, simulates it,
// and measures it on a live TCP star network, reporting forwarded-query
// bandwidth saved and recall lost against the flood baseline.
func RunRoutingCompare(p RoutingCompareParams) (*ExperimentReport, error) {
	return experiments.RunRoutingCompare(p)
}

// RunLoadValidation evaluates, simulates and actually runs the same small
// super-peer network, scrapes each live super-peer's telemetry endpoint, and
// reports per-super-peer bandwidth three ways — analytical prediction,
// simulator measurement, live measurement — with relative errors.
func RunLoadValidation(p LoadValidationParams) (*ExperimentReport, error) {
	return experiments.RunLoadValidation(p)
}
