// Contentsearch: the super-peer index made concrete. The paper models
// queries abstractly (class popularity g and selection power f, Appendix B),
// but describes the implementation concretely: "the super-peer may keep
// inverted lists over the titles of files owned by its clients."
//
// This example runs the simulator both ways over the same network:
//
//  1. content mode — every cluster maintains a real inverted index over
//     synthetic file titles; keyword queries are answered by index lookups;
//  2. model mode — matches are sampled from an Appendix B query model that
//     was *derived from the same corpus* (Library.BuildQueryModel measures
//     each term's selection power over sampled titles).
//
// The two agree, demonstrating that the paper's abstract model is a faithful
// summary of a concrete index.
package main

import (
	"fmt"
	"log"

	"spnet"
)

func main() {
	lib := spnet.DefaultLibrary()

	// Derive an Appendix B query model from the corpus: g(j) from the term
	// popularity law, f(j) measured over 50000 sampled titles.
	qm, err := spnet.BuildQueryModel(lib, 11, 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived query model: %d classes, mean selection power %.2e\n\n",
		qm.Classes(), qm.MeanSelectionPower())

	prof := spnet.DefaultProfile()
	prof.Queries = qm

	cfg := spnet.Config{
		GraphType:    spnet.PowerLaw,
		GraphSize:    600,
		ClusterSize:  10,
		AvgOutdegree: 3.1,
		TTL:          5,
	}
	inst, err := spnet.Generate(cfg, prof, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v (%d peers, %d files)\n\n", cfg, inst.NumPeers, inst.TotalFiles())

	run := func(name string, opts spnet.SimOptions) *spnet.Measured {
		m, err := spnet.Simulate(inst, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  results/query %.1f, EPL %.2f\n", m.ResultsPerQuery, m.EPL)
		fmt.Printf("  mean super-peer: %v\n\n", m.MeanSuperPeer)
		return m
	}

	content := run("content mode (real inverted indexes, keyword queries)",
		spnet.SimOptions{
			Duration: 1200, Seed: 13, Churn: true,
			Content: &spnet.ContentOptions{Library: lib},
		})
	// Fresh instance copy: the simulator mutates nothing, so reuse is safe,
	// but use a distinct seed stream for the model run's randomness.
	model := run("model mode (Appendix B match sampling, same derived model)",
		spnet.SimOptions{Duration: 1200, Seed: 13, Churn: true})

	fmt.Printf("content/model agreement: results ratio %.2f, bandwidth ratio %.2f\n",
		content.ResultsPerQuery/model.ResultsPerQuery,
		content.Aggregate.InBps/model.Aggregate.InBps)
	fmt.Println("\n(the analytic query model the paper evaluates with is a faithful")
	fmt.Println(" summary of a concrete inverted-index implementation)")
}
