// Gnutella 2003: the paper's Section 5.2 case study. We model "today's"
// Gnutella (a pure network: every peer a super-peer, average outdegree 3.1,
// TTL 7), then let the global design procedure (Figure 10) redesign it under
// realistic per-peer limits — 100 Kbps each way, 10 MHz of CPU, 100 open
// connections — for the paper's reach goal of 15% of the network, and
// compare the topologies head to head at matched reach.
package main

import (
	"fmt"
	"log"

	"spnet"
)

func main() {
	const networkSize = 8000             // paper: ~20000; shrunk so the example runs quickly
	desiredReach := networkSize * 3 / 20 // the paper's ratio: 3000 of 20000

	// Today's Gnutella: cluster size 1 — no super-peers at all.
	today := spnet.Config{
		GraphType:    spnet.PowerLaw,
		GraphSize:    networkSize,
		ClusterSize:  1,
		AvgOutdegree: 3.1,
		TTL:          7,
	}
	todaySum, err := spnet.RunTrials(today, nil, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("today's topology (pure Gnutella, outdeg 3.1, TTL 7):")
	printSummary(todaySum)

	// Fairness: our generated overlays are better connected than the 2001
	// Gnutella crawl, so TTL 7 over-reaches the goal. Give today's design
	// the benefit of rule #4 too: the smallest TTL that still covers the
	// desired reach.
	fair := today
	for ttl := 1; ttl <= today.TTL; ttl++ {
		fair.TTL = ttl
		sum, err := spnet.RunTrials(fair, nil, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		if sum.ReachPeers.Mean >= float64(desiredReach) {
			todaySum = sum
			break
		}
	}
	fmt.Printf("today's topology at its minimal TTL %d for reach %d (rule #4):\n",
		fair.TTL, desiredReach)
	printSummary(todaySum)

	// Run the design procedure with the Section 5.2 constraints.
	plan, err := spnet.Design(
		spnet.Goals{NetworkSize: networkSize, DesiredReach: desiredReach},
		spnet.Constraints{
			MaxDownBps: 100_000,
			MaxUpBps:   100_000,
			MaxProcHz:  10_000_000,
			MaxConns:   100,
		},
		spnet.DesignOptions{Trials: 2, Seed: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design procedure (Figure 10) selected:")
	fmt.Printf("  %v\n", plan.Config)
	if plan.ReachShortfall > 0 {
		fmt.Printf("  (reach goal reduced by %.0f%% to stay within limits)\n",
			100*plan.ReachShortfall)
	}
	fmt.Println("\nredesigned topology:")
	printSummary(plan.Predicted)

	imp := func(before, after float64) string {
		return fmt.Sprintf("%.0f%%", 100*(1-after/before))
	}
	fmt.Println("improvement over today's topology (aggregate, matched reach):")
	fmt.Printf("  incoming bandwidth: %s   outgoing bandwidth: %s   processing: %s\n",
		imp(todaySum.Aggregate.InBps.Mean, plan.Predicted.Aggregate.InBps.Mean),
		imp(todaySum.Aggregate.OutBps.Mean, plan.Predicted.Aggregate.OutBps.Mean),
		imp(todaySum.Aggregate.ProcHz.Mean, plan.Predicted.Aggregate.ProcHz.Mean))
	fmt.Printf("  EPL %.1f -> %.1f (shorter paths mean faster responses)\n",
		todaySum.EPL.Mean, plan.Predicted.EPL.Mean)
	fmt.Println("\n(the paper reports >79% improvement in every aggregate load aspect,")
	fmt.Println(" at slightly better result quality — Figure 11)")
}

func printSummary(s *spnet.TrialSummary) {
	fmt.Printf("  aggregate:   in %v, out %v, proc %v\n",
		s.Aggregate.InBps, s.Aggregate.OutBps, s.Aggregate.ProcHz)
	fmt.Printf("  super-peer:  in %v, out %v\n", s.SuperPeer.InBps, s.SuperPeer.OutBps)
	fmt.Printf("  results/query %v, EPL %v, reach %v peers\n\n",
		s.ResultsPerQuery, s.EPL, s.ReachPeers)
}
