// Quickstart: generate the paper's default super-peer network (Table 1),
// run the mean-value analysis, and print what a super-peer and a client are
// expected to carry.
package main

import (
	"fmt"
	"log"

	"spnet"
)

func main() {
	// The Table 1 defaults: a power-law overlay of 10000 peers, cluster
	// size 10, average super-peer outdegree 3.1, query TTL 7.
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 5000 // shrink a little so the example runs in a second

	inst, err := spnet.Generate(cfg, nil, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %v\n", cfg)
	fmt.Printf("  %d peers in %d clusters, %d shared files total\n\n",
		inst.NumPeers, len(inst.Clusters), inst.TotalFiles())

	// One call runs the paper's Steps 2-3: expected load for every node.
	res := spnet.Evaluate(inst)

	fmt.Println("expected load (per entity):")
	fmt.Printf("  super-peer: %v\n", res.MeanSuperPeerLoad())
	fmt.Printf("  client:     %v\n", res.MeanClientLoad())
	fmt.Printf("  aggregate:  %v\n\n", res.AggregateLoad())

	fmt.Println("quality of results:")
	fmt.Printf("  results per query:    %.1f\n", res.ResultsPerQuery)
	fmt.Printf("  reach:                %.0f clusters (%.0f peers)\n",
		res.MeanReachClusters, res.MeanReachPeers)
	fmt.Printf("  expected path length: %.2f hops\n\n", res.EPL)

	// What if every super-peer raised its outdegree to 10 (rule #3)? The
	// EPL drops — but note the caveat of Appendix E: when the reach is
	// already full (as it is here), extra neighbors mostly add redundant
	// query copies, so rule #4 says to lower the TTL along with it.
	denser := cfg
	denser.AvgOutdegree = 10
	denser.TTL = spnet.PredictTTL(10, denser.NumClusters())
	inst2, err := spnet.Generate(denser, nil, 42)
	if err != nil {
		log.Fatal(err)
	}
	res2 := spnet.Evaluate(inst2)
	fmt.Printf("rules #3 + #4 — outdegree 10 with the TTL lowered to %d:\n", denser.TTL)
	fmt.Printf("  super-peer: %v\n", res2.MeanSuperPeerLoad())
	fmt.Printf("  EPL %.2f -> %.2f, results %.1f -> %.1f\n",
		res.EPL, res2.EPL, res.ResultsPerQuery, res2.ResultsPerQuery)
}
