// Redundancy: rule #2 ("super-peer redundancy is good") demonstrated. At
// first glance, 2-redundancy looks like it trades cost for reliability, and
// splitting each cluster into two half-size clusters looks cheaper. The
// paper shows the opposite: redundancy keeps the good aggregate load of the
// large cluster while giving each partner the individual load of a much
// smaller one — plus the reliability of two partners.
//
// This example compares three designs of the same 4000-peer strongly
// connected system: clusters of 100 (baseline), 2-redundant clusters of 100,
// and plain clusters of 50 ("twice the clusters at half the size").
package main

import (
	"fmt"
	"log"

	"spnet"
)

func main() {
	base := spnet.Config{
		GraphType:   spnet.Strong,
		GraphSize:   4000,
		ClusterSize: 100,
		TTL:         1,
	}
	redundant := base
	redundant.Redundancy = true
	half := base
	half.ClusterSize = 50

	type row struct {
		name string
		cfg  spnet.Config
	}
	rows := []row{
		{"cluster 100, plain", base},
		{"cluster 100, 2-redundant", redundant},
		{"cluster 50, plain", half},
	}

	const trials = 10
	fmt.Printf("%-28s %-16s %-16s %-16s %-14s\n",
		"design", "agg bw (bps)", "sp bw (bps)", "sp proc (Hz)", "client out (bps)")
	var baseline *spnet.TrialSummary
	for i, r := range rows {
		sum, err := spnet.RunTrials(r.cfg, nil, trials, 1)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = sum
		}
		fmt.Printf("%-28s %-16.4g %-16.4g %-16.4g %-14.4g\n",
			r.name,
			sum.Aggregate.InBps.Mean+sum.Aggregate.OutBps.Mean,
			sum.SuperPeer.InBps.Mean+sum.SuperPeer.OutBps.Mean,
			sum.SuperPeer.ProcHz.Mean,
			sum.Client.OutBps.Mean)
	}

	redSum, err := spnet.RunTrials(redundant, nil, trials, 1)
	if err != nil {
		log.Fatal(err)
	}
	aggDelta := (redSum.Aggregate.InBps.Mean + redSum.Aggregate.OutBps.Mean) /
		(baseline.Aggregate.InBps.Mean + baseline.Aggregate.OutBps.Mean)
	spDelta := (redSum.SuperPeer.InBps.Mean + redSum.SuperPeer.OutBps.Mean) /
		(baseline.SuperPeer.InBps.Mean + baseline.SuperPeer.OutBps.Mean)
	fmt.Printf("\nredundancy vs plain at the same cluster size:\n")
	fmt.Printf("  aggregate bandwidth: %+.1f%% (paper: +2.5%%)\n", 100*(aggDelta-1))
	fmt.Printf("  per-partner bandwidth: %+.1f%% (paper: -48%%)\n", 100*(spDelta-1))
	fmt.Println("\nthe redundant design matches the half-size clusters on individual load")
	fmt.Println("while keeping the aggregate efficiency of large clusters — and if one")
	fmt.Println("partner fails, the co-partner keeps the whole cluster connected.")
}
