// Adaptive: the Section 5.3 local decision rules running live. A network
// starts from the Gnutella-like defaults; every super-peer periodically
// inspects only its own measured load and acts — accepting clients, growing
// its outdegree (rule II), promoting partners or splitting when overloaded
// and coalescing when idle (rule I), dropping neighbors that bring no new
// results (Appendix E), and decaying its TTL when responses never come from
// the horizon (rule III). New clients keep arriving throughout.
package main

import (
	"fmt"
	"log"

	"spnet"
)

func main() {
	cfg := spnet.Config{
		GraphType:    spnet.PowerLaw,
		GraphSize:    800,
		ClusterSize:  10,
		AvgOutdegree: 3.1,
		TTL:          7,
	}
	inst, err := spnet.Generate(cfg, nil, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %v\n", cfg)
	fmt.Printf("  %d peers in %d clusters\n\n", inst.NumPeers, len(inst.Clusters))

	// Each super-peer is willing to carry 40 kbps each way and ~0.8 MHz —
	// the "limited altruism" assumption. New clients arrive at 0.15/s, so
	// the population grows by ~40% over the 40-minute run.
	opts := spnet.SimOptions{
		Duration: 2400,
		Seed:     8,
		Churn:    true,
		Adaptive: &spnet.AdaptiveOptions{
			Limit:        spnet.Load{InBps: 40_000, OutBps: 40_000, ProcHz: 800_000},
			Interval:     60,
			MaxOutdegree: 10,
			ArrivalRate:  0.15,
		},
	}
	m, err := spnet.Simulate(inst, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after %.0f s of virtual time (%d queries, %d events):\n",
		m.Duration, m.QueriesIssued, m.EventsExecuted)
	fmt.Printf("  peers:          %d -> %d (arrivals)\n", inst.NumPeers, m.FinalPeers)
	fmt.Printf("  clusters:       %d -> %d (splits/promotions/merges)\n",
		len(inst.Clusters), m.FinalClusters)
	fmt.Printf("  mean outdegree: %.1f -> %.1f (rule II)\n",
		cfg.AvgOutdegree, m.FinalMeanOutdegree)
	fmt.Printf("  mean TTL:       %d -> %.1f (rule III)\n", cfg.TTL, m.FinalMeanTTL)
	fmt.Printf("\nmeasured loads at the end state:\n")
	fmt.Printf("  mean super-peer: %v\n", m.MeanSuperPeer)
	fmt.Printf("  mean client:     %v\n", m.MeanClient)
	fmt.Printf("  results/query:   %.1f, EPL %.2f\n", m.ResultsPerQuery, m.EPL)

	over := 0
	for _, l := range m.SuperPeer {
		if l.InBps > opts.Adaptive.Limit.InBps || l.OutBps > opts.Adaptive.Limit.OutBps {
			over++
		}
	}
	fmt.Printf("\nsuper-peers above their bandwidth limit: %d of %d\n",
		over, len(m.SuperPeer))
	fmt.Println("(local decisions keep the vast majority of super-peers under their limit")
	fmt.Println(" while the population grows — the few above it are mid-split or mid-promotion)")
}
