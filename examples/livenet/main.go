// Livenet: the super-peer network running for real. This example boots a
// five-super-peer overlay over loopback TCP, attaches clients with file
// collections, and performs keyword searches — joins ship metadata into
// inverted indexes, queries flood with a TTL, and Response messages travel
// the reverse path, exactly the protocol of the paper's Section 3, on the
// wire format its cost model prices.
package main

import (
	"fmt"
	"log"
	"time"

	"spnet"
)

func main() {
	// Five super-peers in a ring with one chord — every node within TTL
	// reach of every other.
	const clusters = 5
	nodes := make([]*spnet.Node, clusters)
	for i := range nodes {
		nodes[i] = spnet.NewNode(spnet.NodeOptions{TTL: 4})
		if err := nodes[i].Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer nodes[i].Close()
	}
	for i := range nodes {
		if err := nodes[i].ConnectPeer(nodes[(i+1)%clusters].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	if err := nodes[0].ConnectPeer(nodes[2].Addr()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay up: %d super-peers in a ring with a chord\n\n", clusters)

	// Clients join different clusters with themed collections.
	collections := [][]spnet.SharedFile{
		{{Index: 1, Title: "Miles Davis Kind of Blue"}, {Index: 2, Title: "Coltrane Blue Train"}},
		{{Index: 1, Title: "Blue Note Sessions"}, {Index: 2, Title: "Bebop Anthology"}},
		{{Index: 1, Title: "Deep Blue Delta"}},
		{{Index: 1, Title: "Symphony No 9"}, {Index: 2, Title: "Piano Concertos"}},
		{{Index: 1, Title: "Modal Jazz Explorations"}},
	}
	clients := make([]*spnet.NodeClient, clusters)
	for i, files := range collections {
		cl, err := spnet.DialSuperPeer(nodes[i].Addr(), files)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	// Let the joins land.
	waitIndexed(nodes, 8)
	total := 0
	for i, n := range nodes {
		s := n.Stats()
		total += s.IndexedFiles
		fmt.Printf("  super-peer %d: %d clients, %d peers, %d files indexed\n",
			i, s.Clients, s.Peers, s.IndexedFiles)
	}
	fmt.Printf("  %d files shared network-wide\n\n", total)

	// A client in cluster 4 searches the whole network.
	search := func(who int, q string) {
		results, err := clients[who].Search(q, 600*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client@%d searched %-10q -> %d results\n", who, q, len(results))
		for _, r := range results {
			fmt.Printf("    %-32s %d hops away\n", r.Title, r.Hops)
		}
	}
	search(4, "blue")
	fmt.Println()
	search(3, "jazz")
	fmt.Println()

	// A client leaves; its files vanish from the network.
	clients[2].Close()
	time.Sleep(100 * time.Millisecond)
	fmt.Println("client@2 left (its Deep Blue Delta collection is de-indexed)")
	search(4, "blue")
}

func waitIndexed(nodes []*spnet.Node, want int) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, n := range nodes {
			total += n.Stats().IndexedFiles
		}
		if total >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
