// Livenet: the super-peer network running for real. Act one boots a
// five-super-peer overlay over loopback TCP, attaches clients with file
// collections, and performs keyword searches — joins ship metadata into
// inverted indexes, queries flood with a TTL, and Response messages travel
// the reverse path, exactly the protocol of the paper's Section 3, on the
// wire format its cost model prices.
//
// Act two follows a query hit into the content transfer plane: two of the
// super-peers serve an identical content store, a search surfaces both as
// download sources, and Fetch pulls the file from both in parallel —
// chunked, hash-verified against the manifest, and priced as its own load
// class.
//
// Act three turns on churn: a k-redundant deployment (paper Section 3.2)
// where a client's super-peer is killed mid-search. The supervised client
// backs off, fails over to the redundant partner, re-joins automatically, and
// its next search succeeds — with the recovery time measured and compared to
// the recovery the reliability experiment assumes.
package main

import (
	"fmt"
	"log"
	"time"

	"spnet"
)

func main() {
	// Five super-peers in a ring with one chord — every node within TTL
	// reach of every other.
	const clusters = 5
	// Super-peers 1 and 3 also serve content: the same store on both means a
	// later download can fetch from the two of them in parallel.
	store := spnet.NewTransferStore(spnet.TransferStoreOptions{
		ChunkSize: 16 << 10, MinFileSize: 128 << 10, MaxFileSize: 256 << 10,
	})
	store.Add(fetchTitle)
	nodes := make([]*spnet.Node, clusters)
	for i := range nodes {
		opts := spnet.NodeOptions{TTL: 4}
		if i == 1 || i == 3 {
			opts.Content = store
		}
		nodes[i] = spnet.NewNode(opts)
		if err := nodes[i].Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer nodes[i].Close()
	}
	for i := range nodes {
		if err := nodes[i].ConnectPeer(nodes[(i+1)%clusters].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	if err := nodes[0].ConnectPeer(nodes[2].Addr()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay up: %d super-peers in a ring with a chord\n\n", clusters)

	// Clients join different clusters with themed collections.
	collections := [][]spnet.SharedFile{
		{{Index: 1, Title: "Miles Davis Kind of Blue"}, {Index: 2, Title: "Coltrane Blue Train"}},
		{{Index: 1, Title: "Blue Note Sessions"}, {Index: 2, Title: "Bebop Anthology"}},
		{{Index: 1, Title: "Deep Blue Delta"}},
		{{Index: 1, Title: "Symphony No 9"}, {Index: 2, Title: "Piano Concertos"}},
		{{Index: 1, Title: "Modal Jazz Explorations"}},
	}
	clients := make([]*spnet.NodeClient, clusters)
	for i, files := range collections {
		cl, err := spnet.DialSuperPeer(nodes[i].Addr(), files)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	// Let the joins land: 8 client files plus the store title on 1 and 3.
	waitIndexed(nodes, 10)
	total := 0
	for i, n := range nodes {
		s := n.Stats()
		total += s.IndexedFiles
		fmt.Printf("  super-peer %d: %d clients, %d peers, %d files indexed\n",
			i, s.Clients, s.Peers, s.IndexedFiles)
	}
	fmt.Printf("  %d files shared network-wide\n\n", total)

	// A client in cluster 4 searches the whole network.
	search := func(who int, q string) {
		results, err := clients[who].Search(q, 600*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client@%d searched %-10q -> %d results\n", who, q, len(results))
		for _, r := range results {
			fmt.Printf("    %-32s %d hops away\n", r.Title, r.Hops)
		}
	}
	search(4, "blue")
	fmt.Println()
	search(3, "jazz")
	fmt.Println()

	// A client leaves; its files vanish from the network.
	clients[2].Close()
	time.Sleep(100 * time.Millisecond)
	fmt.Println("client@2 left (its Deep Blue Delta collection is de-indexed)")
	search(4, "blue")

	fmt.Println()
	fetchDemo(clients[4])

	fmt.Println()
	churnDemo()
}

// fetchTitle is the store-served file act two revolves around. The index
// normalizes titles to lowercase, and TransferSourcesFor matches the exact
// title a QueryHit carries, so the stored title is lowercase too.
const fetchTitle = "archival concert master reel"

// fetchDemo is act two: the QueryHits a search returns become download
// sources, and Fetch pulls the file from every advertising super-peer in
// parallel with per-chunk hash verification.
func fetchDemo(cl *spnet.NodeClient) {
	fmt.Println("--- fetch: a query hit becomes a chunked multi-source download ---")
	results, err := cl.Search("reel", 600*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	sources := spnet.TransferSourcesFor(results, fetchTitle)
	fmt.Printf("%d hits advertise %q; fetching from all of them\n", len(sources), fetchTitle)
	res, err := spnet.Fetch(sources, spnet.TransferOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	status := "hash verified"
	if res.Hash != spnet.TransferContentHash(fetchTitle, res.Size) {
		status = "HASH MISMATCH"
	}
	fmt.Printf("downloaded %d bytes in %d chunks from %d sources in %v (%.0f B/s, %s)\n",
		res.Size, res.Chunks, len(res.Sources), res.Elapsed.Round(time.Millisecond),
		res.ThroughputBps, status)
}

// churnDemo is act three: kill a client's super-peer mid-search and watch
// the k-redundancy failover recover.
func churnDemo() {
	fmt.Println("--- churn: killing a super-peer mid-search ---")
	lv := spnet.NewLiveNetwork(spnet.LiveConfig{Clusters: 2, Partners: 2, Seed: 42})
	if err := lv.Launch(); err != nil {
		log.Fatal(err)
	}
	defer lv.Close()
	fmt.Println("live deployment: 2 clusters × 2 redundant partners, fault injection armed")

	provider, err := spnet.DialSuperPeer(lv.ClusterAddrs(1)[0], []spnet.SharedFile{
		{Index: 1, Title: "Stolen Moments"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer provider.Close()

	// The supervised client ranks its cluster's redundant partners and
	// reports every failover event.
	var lostAt, rejoinedAt time.Time
	cl, err := spnet.DialSuperPeers(spnet.ClientDialOptions{
		Addrs: lv.ClusterAddrs(0),
		Seed:  7,
		Backoff: spnet.ClientBackoff{
			Initial: 50 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.2,
		},
		OnEvent: func(e spnet.ClientEvent) {
			switch e.Type {
			case spnet.EventConnLost:
				lostAt = time.Now()
				fmt.Println("  event: connection to super-peer lost")
			case spnet.EventBackoff:
				fmt.Printf("  event: backing off %v before attempt %d\n", e.Delay, e.Attempt)
			case spnet.EventReconnected:
				fmt.Printf("  event: reconnected to redundant partner %s\n", e.Addr)
			case spnet.EventRejoined:
				rejoinedAt = time.Now()
				fmt.Println("  event: collection re-joined on the new super-peer")
			}
		},
	}, []spnet.SharedFile{{Index: 1, Title: "Footprints Live"}})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(100 * time.Millisecond) // let the join land

	go func() {
		time.Sleep(50 * time.Millisecond)
		lv.KillSuperPeer(0, 0)
		fmt.Println("  super-peer 0/0 killed (the client's current one)")
	}()
	if _, err := cl.Search("moments", 1500*time.Millisecond); err != nil {
		fmt.Printf("  mid-crash search degraded: %v\n", err)
	}

	results, err := cl.Search("moments", time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-failover search -> %d result(s): found %q across the overlay\n",
		len(results), results[0].Title)

	recovery := rejoinedAt.Sub(lostAt)
	fmt.Printf("measured recovery (conn lost -> rejoined): %v\n", recovery)
	fmt.Println("the reliability experiment models recovery as a fixed RecoveryDelay (seconds to")
	fmt.Println("minutes, dominated by detection and re-provisioning); on loopback, with backoff as")
	fmt.Println("the only cost, failover to a warm redundant partner is sub-second — the §3.2 payoff.")
}

func waitIndexed(nodes []*spnet.Node, want int) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, n := range nodes {
			total += n.Stats().IndexedFiles
		}
		if total >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
