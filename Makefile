# Development entry points. `make check` is the full gate: vet, build,
# and the test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...
