// Benchmarks: one per paper table/figure (regenerating the artifact at
// reduced scale; run the CLI with -scale 1 for full paper scale), plus
// micro-benchmarks of the core engines. Custom metrics report the headline
// quantity each artifact measures so `go test -bench=.` doubles as a
// compact reproduction run.
package spnet_test

import (
	"testing"
	"time"

	"spnet"
)

// benchParams shrink the networks so a full -bench=. sweep stays fast while
// preserving every experiment's shape.
func benchParams() spnet.ExperimentParams {
	return spnet.ExperimentParams{Scale: 0.05, Trials: 1, Seed: 1}
}

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := spnet.RunExperiment(id, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 && len(rep.Series) == 0 {
			b.Fatal("empty report")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)  { benchmarkExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchmarkExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchmarkExperiment(b, "table3") }
func BenchmarkFig4(b *testing.B)    { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchmarkExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchmarkExperiment(b, "fig9") }
func BenchmarkFig11(b *testing.B)   { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { benchmarkExperiment(b, "fig12") }
func BenchmarkRule4(b *testing.B)   { benchmarkExperiment(b, "rule4") }
func BenchmarkFigA13(b *testing.B)  { benchmarkExperiment(b, "figA13") }
func BenchmarkFigA14(b *testing.B)  { benchmarkExperiment(b, "figA14") }
func BenchmarkFigA15(b *testing.B)  { benchmarkExperiment(b, "figA15") }
func BenchmarkTableD2(b *testing.B) { benchmarkExperiment(b, "tableD2") }

// BenchmarkFig4Serial / BenchmarkFig4Parallel measure the Figure 4 sweep
// with the evaluation pool pinned to one worker versus all cores, at a
// larger scale so the per-point work dominates pool overhead. Parallel
// reports its speedup over a serial reference run as a custom metric; on a
// single-core host the two are equivalent and the speedup reads ~1.
func fig4BenchParams(workers int) spnet.ExperimentParams {
	return spnet.ExperimentParams{Scale: 0.2, Trials: 2, Seed: 1, Workers: workers}
}

func BenchmarkFig4Serial(b *testing.B) {
	p := fig4BenchParams(1)
	for i := 0; i < b.N; i++ {
		if _, err := spnet.RunExperiment("fig4", p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Parallel(b *testing.B) {
	// One untimed serial run as the speedup reference.
	serialStart := time.Now()
	if _, err := spnet.RunExperiment("fig4", fig4BenchParams(1)); err != nil {
		b.Fatal(err)
	}
	serial := time.Since(serialStart)

	p := fig4BenchParams(0) // all cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spnet.RunExperiment("fig4", p); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(serial)/float64(perOp), "speedup")
	}
}

// BenchmarkKRedundancy runs the general-k redundancy extension (an ablation
// of the paper's k=2 design choice).
func BenchmarkKRedundancy(b *testing.B) { benchmarkExperiment(b, "kredundancy") }

// BenchmarkReliability runs the failure-injection reliability extension.
func BenchmarkReliability(b *testing.B) { benchmarkExperiment(b, "reliability") }

// BenchmarkBreakdown runs the load-attribution ablation.
func BenchmarkBreakdown(b *testing.B) { benchmarkExperiment(b, "breakdown") }

func BenchmarkSimCheck(b *testing.B) {
	// The simulator cross-validation is the heaviest artifact; run it at an
	// extra-small scale for benchmarking.
	for i := 0; i < b.N; i++ {
		rep, err := spnet.RunExperiment("simcheck",
			spnet.ExperimentParams{Scale: 0.03, Trials: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// Core-engine micro-benchmarks.

// BenchmarkGenerate measures instance generation (Step 1): PLOD topology
// plus peer sampling for a 2000-peer network.
func BenchmarkGenerate(b *testing.B) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spnet.Generate(cfg, nil, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures the mean-value analysis (Steps 2-3) over a
// 2000-peer power-law instance: one BFS per source cluster plus response
// flow accumulation.
func BenchmarkEvaluate(b *testing.B) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 2000
	inst, err := spnet.Generate(cfg, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var results float64
	for i := 0; i < b.N; i++ {
		res := spnet.Evaluate(inst)
		results = res.ResultsPerQuery
	}
	b.ReportMetric(results, "results/query")
}

// BenchmarkEvaluateClique measures the closed-form clique fast path at the
// cluster-size-1 extreme (10000 super-peers) that would otherwise need a
// 5×10⁷-edge graph.
func BenchmarkEvaluateClique(b *testing.B) {
	cfg := spnet.Config{GraphType: spnet.Strong, GraphSize: 10000, ClusterSize: 1, TTL: 1}
	inst, err := spnet.Generate(cfg, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spnet.Evaluate(inst)
	}
}

// BenchmarkSimulate measures the discrete-event simulator's event
// throughput on a 500-peer network.
func BenchmarkSimulate(b *testing.B) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 500
	inst, err := spnet.Generate(cfg, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		m, err := spnet.Simulate(inst, spnet.SimOptions{
			Duration: 120, Seed: uint64(i), Churn: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = m.EventsExecuted
	}
	b.ReportMetric(float64(events)/120, "events/vsec")
}

// BenchmarkDesign measures the Figure 10 global design procedure.
func BenchmarkDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := spnet.Design(
			spnet.Goals{NetworkSize: 2000, DesiredReach: 400},
			spnet.Constraints{MaxDownBps: 1e5, MaxUpBps: 1e5, MaxProcHz: 1e7, MaxConns: 100},
			spnet.DesignOptions{Trials: 1, Seed: uint64(i)},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureEPL measures the Figure 9 EPL probe.
func BenchmarkMeasureEPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := spnet.MeasureEPL(1000, 10, 300, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSearch measures end-to-end query latency over a real 3-node
// TCP overlay: flood, index lookups, reverse-path responses.
func BenchmarkLiveSearch(b *testing.B) {
	nodes := make([]*spnet.Node, 3)
	for i := range nodes {
		nodes[i] = spnet.NewNode(spnet.NodeOptions{TTL: 4})
		if err := nodes[i].Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer nodes[i].Close()
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].ConnectPeer(nodes[i-1].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	cl, err := spnet.DialSuperPeer(nodes[2].Addr(), []spnet.SharedFile{
		{Index: 1, Title: "benchmark target file"},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	// Wait for the join to land.
	for nodes[2].Stats().IndexedFiles == 0 {
		time.Sleep(time.Millisecond)
	}
	seeker, err := spnet.DialSuperPeer(nodes[0].Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer seeker.Close()

	// The collection window bounds each search: the flood protocol cannot
	// know when the last response has arrived, so per-op time ≈ the window.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := seeker.Search("benchmark", 50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 1 {
			b.Fatalf("got %d results", len(results))
		}
	}
}
